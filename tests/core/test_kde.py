"""Tests for Gaussian KDE and min-error threshold learning (kde.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kde as kde_module
from repro.core.kde import GaussianKDE1D, min_error_threshold


class TestGaussianKDE:
    def test_density_integrates_to_one(self):
        gen = np.random.default_rng(0)
        kde = GaussianKDE1D(gen.normal(0, 1, size=200))
        grid = np.linspace(-8, 8, 4001)
        integral = np.trapezoid(kde.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_density_peaks_near_sample_mass(self):
        samples = np.concatenate([np.full(50, -3.0), np.full(50, 3.0)])
        kde = GaussianKDE1D(samples, bandwidth=0.5)
        assert kde.pdf(-3.0) > kde.pdf(0.0)
        assert kde.pdf(3.0) > kde.pdf(0.0)

    def test_callable_matches_pdf(self):
        kde = GaussianKDE1D(np.asarray([0.0, 1.0, 2.0]))
        x = np.asarray([0.5, 1.5])
        assert np.allclose(kde(x), kde.pdf(x))

    def test_degenerate_constant_samples(self):
        kde = GaussianKDE1D(np.full(10, 5.0))
        assert kde.bandwidth_ > 0
        assert kde.pdf(5.0) > kde.pdf(6.0)

    def test_single_sample(self):
        kde = GaussianKDE1D(np.asarray([2.0]))
        assert np.isfinite(kde.pdf(2.0)).all()

    def test_rejects_empty_or_nonfinite(self):
        with pytest.raises(ValueError):
            GaussianKDE1D(np.empty(0))
        with pytest.raises(ValueError):
            GaussianKDE1D(np.asarray([1.0, np.nan]))
        with pytest.raises(ValueError):
            GaussianKDE1D(np.asarray([1.0]), bandwidth=0.0)

    def test_silverman_bandwidth_shrinks_with_n(self):
        gen = np.random.default_rng(1)
        small = GaussianKDE1D(gen.normal(size=20))
        large = GaussianKDE1D(gen.normal(size=2000))
        assert large.bandwidth_ < small.bandwidth_

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50)
    )
    @settings(max_examples=40, deadline=None)
    def test_density_is_non_negative_everywhere(self, samples):
        kde = GaussianKDE1D(np.asarray(samples))
        grid = np.linspace(min(samples) - 10, max(samples) + 10, 100)
        assert (kde.pdf(grid) >= 0).all()


class TestMinErrorThreshold:
    def test_perfectly_separable_classes(self):
        lower = np.asarray([0.0, 0.1, 0.2])
        upper = np.asarray([1.0, 1.1, 1.2])
        threshold = min_error_threshold(lower, upper)
        assert 0.2 < threshold <= 1.0
        assert (lower < threshold).all()
        assert (upper >= threshold).all()

    def test_zero_error_when_separable(self):
        gen = np.random.default_rng(0)
        lower = gen.uniform(0, 0.4, size=100)
        upper = gen.uniform(0.6, 1.0, size=100)
        t = min_error_threshold(lower, upper)
        errors = (lower >= t).sum() + (upper < t).sum()
        assert errors == 0

    def test_overlapping_classes_minimize_error(self):
        gen = np.random.default_rng(1)
        lower = gen.normal(0.0, 1.0, size=500)
        upper = gen.normal(2.0, 1.0, size=500)
        t = min_error_threshold(lower, upper)
        # The Bayes boundary for equal-variance Gaussians is the midpoint.
        assert abs(t - 1.0) < 0.3

    def test_threshold_error_is_a_minimum(self):
        gen = np.random.default_rng(2)
        lower = gen.normal(0, 1, size=200)
        upper = gen.normal(1.5, 1, size=200)
        t = min_error_threshold(lower, upper)

        def errors(thr):
            return (lower >= thr).sum() + (upper < thr).sum()

        base = errors(t)
        for other in np.linspace(-3, 5, 101):
            assert errors(other) >= base

    def test_identical_values_degenerate(self):
        assert min_error_threshold([1.0, 1.0], [1.0]) == 1.0

    def test_rejects_empty_classes(self):
        with pytest.raises(ValueError):
            min_error_threshold(np.empty(0), np.asarray([1.0]))
        with pytest.raises(ValueError):
            min_error_threshold(np.asarray([1.0]), np.empty(0))

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=40),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_within_data_range(self, lower, upper):
        t = min_error_threshold(np.asarray(lower), np.asarray(upper))
        all_vals = lower + upper
        assert min(all_vals) <= t <= max(all_vals)

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_global_minimum_against_brute_force(self, lower, upper):
        """The midpoint scan achieves the true minimum over all real
        thresholds in [min, max] — the property the old uniform grid
        could miss between grid points."""
        lo = np.asarray(lower)
        hi = np.asarray(upper)
        t = min_error_threshold(lo, hi)

        def errors(thr):
            return (lo >= thr).sum() + (hi < thr).sum()

        # errors() only changes at sample values, so sample values and
        # midpoints between consecutive ones enumerate every level.
        uniq = np.unique(np.concatenate([lo, hi]))
        brute_candidates = np.concatenate([uniq, (uniq[:-1] + uniq[1:]) / 2.0])
        brute_min = min(errors(c) for c in brute_candidates)
        assert errors(t) == brute_min


class TestTiledPdf:
    def test_tiled_matches_untiled_bitwise(self, monkeypatch):
        """A tiny tile (many blocks) must reproduce the one-shot outer
        product exactly: rows are never split, so each point's kernel
        sum keeps its reduction order."""
        gen = np.random.default_rng(3)
        samples = gen.normal(0, 1, size=257)
        points = np.linspace(-4, 4, 301)
        kde = GaussianKDE1D(samples)
        one_shot = kde.pdf(points)
        monkeypatch.setattr(kde_module, "KDE_TILE_ELEMENTS", 512)
        tiled = kde.pdf(points)
        assert np.array_equal(one_shot, tiled)

    def test_bounded_scratch_with_many_points(self, monkeypatch):
        """Even a degenerate one-row tile yields correct densities."""
        monkeypatch.setattr(kde_module, "KDE_TILE_ELEMENTS", 1)
        kde = GaussianKDE1D(np.asarray([0.0, 1.0, 2.0]), bandwidth=0.5)
        dens = kde.pdf(np.linspace(-1, 3, 17))
        assert dens.shape == (17,)
        assert (dens > 0).all()
