"""Tests for the from-scratch mean-shift clusterer (meanshift.py)."""

import numpy as np
import pytest

from repro.core.meanshift import MeanShift, estimate_bandwidth


def two_blobs(n_a=60, n_b=30, separation=5.0, seed=0):
    gen = np.random.default_rng(seed)
    blob_a = gen.normal(0.0, 0.3, size=(n_a, 3))
    blob_b = gen.normal(0.0, 0.3, size=(n_b, 3)) + separation
    return np.vstack([blob_a, blob_b])


class TestEstimateBandwidth:
    def test_positive_for_spread_data(self):
        pts = two_blobs()
        assert estimate_bandwidth(pts) > 0

    def test_single_point(self):
        assert estimate_bandwidth(np.zeros((1, 3))) == 1.0

    def test_identical_points(self):
        assert estimate_bandwidth(np.zeros((10, 3))) > 0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            estimate_bandwidth(np.zeros((5, 2)), quantile=0.0)

    def test_scales_with_data_spread(self):
        tight = estimate_bandwidth(two_blobs(separation=1.0))
        wide = estimate_bandwidth(two_blobs(separation=20.0))
        assert wide > tight


class TestMeanShift:
    def test_separates_two_blobs(self):
        pts = two_blobs()
        result = MeanShift(bandwidth=1.0).fit(pts)
        assert result.n_clusters == 2
        # Largest cluster first, and the split matches construction.
        sizes = result.cluster_sizes()
        assert sizes[0] == 60
        assert sizes[1] == 30

    def test_labels_align_with_geometry(self):
        pts = two_blobs()
        result = MeanShift(bandwidth=1.0).fit(pts)
        assert (result.labels[:60] == result.labels[0]).all()
        assert (result.labels[60:] == result.labels[60]).all()
        assert result.labels[0] != result.labels[60]

    def test_single_tight_cluster(self):
        gen = np.random.default_rng(1)
        pts = gen.normal(0.0, 0.05, size=(40, 3))
        result = MeanShift(bandwidth=1.0).fit(pts)
        assert result.n_clusters == 1

    def test_centers_near_blob_means(self):
        pts = two_blobs(separation=8.0)
        result = MeanShift(bandwidth=1.5).fit(pts)
        main = result.centers[0]
        assert np.linalg.norm(main - pts[:60].mean(axis=0)) < 0.3

    def test_auto_bandwidth_path(self):
        pts = two_blobs()
        result = MeanShift().fit(pts)
        assert result.bandwidth > 0
        assert result.n_clusters >= 1

    def test_single_point_input(self):
        result = MeanShift(bandwidth=1.0).fit(np.asarray([[1.0, 2.0, 3.0]]))
        assert result.n_clusters == 1
        assert result.labels.tolist() == [0]

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            MeanShift(bandwidth=1.0).fit(np.empty((0, 3)))

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            MeanShift(bandwidth=0.0)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            MeanShift(max_iterations=0)

    def test_three_clusters_in_1d_embedded(self):
        gen = np.random.default_rng(3)
        pts = np.vstack(
            [
                gen.normal(0, 0.1, size=(20, 2)),
                gen.normal(4, 0.1, size=(20, 2)),
                gen.normal(8, 0.1, size=(20, 2)),
            ]
        )
        result = MeanShift(bandwidth=1.0).fit(pts)
        assert result.n_clusters == 3

    def test_deterministic(self):
        pts = two_blobs()
        r1 = MeanShift(bandwidth=1.0).fit(pts)
        r2 = MeanShift(bandwidth=1.0).fit(pts)
        assert np.array_equal(r1.labels, r2.labels)
        assert np.allclose(r1.centers, r2.centers)
