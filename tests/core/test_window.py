"""Tests for Hann windowing, smoothing and moving averages (window.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.window import hann_window, moving_average, smooth_hann


class TestHannWindow:
    def test_matches_paper_formula(self):
        n_h = 24
        window = hann_window(n_h)
        n = np.arange(n_h)
        expected = 0.5 * (1 - np.cos(2 * np.pi * n / (n_h - 1)))
        assert np.allclose(window, expected)

    def test_endpoints_are_zero(self):
        window = hann_window(16)
        assert window[0] == pytest.approx(0.0)
        assert window[-1] == pytest.approx(0.0)

    def test_symmetric(self):
        window = hann_window(25)
        assert np.allclose(window, window[::-1])

    def test_peak_at_center(self):
        window = hann_window(25)
        assert window[12] == pytest.approx(1.0)

    def test_size_one_is_identity_tap(self):
        assert np.allclose(hann_window(1), [1.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            hann_window(0)


class TestSmoothHann:
    def test_preserves_constant_series(self):
        series = np.full(200, 3.7)
        assert np.allclose(smooth_hann(series, 24), series, atol=1e-10)

    def test_reduces_noise_variance(self):
        gen = np.random.default_rng(0)
        noisy = gen.normal(0.0, 1.0, size=2000)
        smoothed = smooth_hann(noisy, 24)
        assert smoothed.std() < 0.5 * noisy.std()

    def test_window_size_one_is_identity(self):
        series = np.arange(50, dtype=float)
        out = smooth_hann(series, 1)
        assert np.allclose(out, series)
        assert out is not series  # returns a copy, never aliases input

    def test_output_length_matches_input(self):
        for n in (3, 10, 100, 1023):
            assert smooth_hann(np.ones(n), 24).shape == (n,)

    def test_preserves_mean_level(self):
        gen = np.random.default_rng(1)
        series = 5.0 + gen.normal(0, 0.1, size=500)
        smoothed = smooth_hann(series, 24)
        assert smoothed.mean() == pytest.approx(series.mean(), rel=1e-3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            smooth_hann(np.ones((4, 4)), 3)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            smooth_hann(np.ones(10), 0)

    @given(
        arrays(
            np.float64,
            st.integers(3, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.integers(1, 48),
    )
    @settings(max_examples=50, deadline=None)
    def test_smoothing_stays_within_input_range(self, series, window):
        smoothed = smooth_hann(series, window)
        assert smoothed.min() >= series.min() - 1e-6 * (1 + abs(series.min()))
        assert smoothed.max() <= series.max() + 1e-6 * (1 + abs(series.max()))


class TestMovingAverage:
    def test_window_one_is_identity(self):
        series = np.asarray([1.0, 5.0, 2.0])
        assert np.allclose(moving_average(series, 1), series)

    def test_constant_series_unchanged(self):
        series = np.full(20, 2.0)
        assert np.allclose(moving_average(series, 5), series)

    def test_trailing_average_exact(self):
        series = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        out = moving_average(series, 3)
        expected = [1.0, 1.5, 2.0, 3.0, 4.0]
        assert np.allclose(out, expected)

    def test_no_future_leakage(self):
        """Changing a later point must not affect earlier outputs."""
        series = np.asarray([1.0, 2.0, 3.0, 4.0])
        base = moving_average(series, 2)
        series2 = series.copy()
        series2[-1] = 100.0
        modified = moving_average(series2, 2)
        assert np.allclose(base[:-1], modified[:-1])

    def test_2d_averages_along_axis0(self):
        series = np.stack([np.arange(5.0), np.arange(5.0) * 2], axis=1)
        out = moving_average(series, 2)
        assert out.shape == series.shape
        assert np.allclose(out[:, 1], 2 * out[:, 0])

    def test_empty_input(self):
        out = moving_average(np.empty(0), 3)
        assert out.shape == (0,)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    @given(
        arrays(np.float64, st.integers(1, 100), elements=st.floats(-1e3, 1e3, allow_nan=False)),
        st.integers(1, 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_output_bounded_by_running_extremes(self, series, window):
        out = moving_average(series, window)
        running_min = np.minimum.accumulate(series)
        running_max = np.maximum.accumulate(series)
        assert (out >= running_min - 1e-9 * (1 + np.abs(running_min))).all()
        assert (out <= running_max + 1e-9 * (1 + np.abs(running_max))).all()
