"""Unit and property tests for feature extraction (features.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.features import (
    FeatureConfig,
    extract_features,
    measurement_offsets,
    normalize_measurement,
    psd_feature,
    psd_frequencies,
    rms_feature,
    rms_per_axis,
)
from tests.conftest import make_sine_block

finite_blocks = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 64), st.just(3)),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


class TestNormalization:
    def test_normalized_block_is_zero_mean_per_axis(self):
        block = make_sine_block(offset=(0.3, -0.2, 1.0))
        normalized = normalize_measurement(block)
        assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-12)

    def test_normalization_removes_gravity_offset(self):
        with_gravity = make_sine_block(offset=(0.0, 0.0, 1.0))
        without_gravity = make_sine_block(offset=(0.0, 0.0, 0.0))
        assert np.allclose(
            normalize_measurement(with_gravity), normalize_measurement(without_gravity)
        )

    def test_offsets_recover_the_injected_bias(self):
        block = make_sine_block(offset=(0.1, -0.4, 0.9), num_samples=4096)
        offsets = measurement_offsets(block)
        # The sinusoid's own mean over a non-integer number of periods is
        # small but nonzero, hence the loose tolerance.
        assert np.allclose(offsets, [0.1, -0.4, 0.9], atol=5e-3)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            normalize_measurement(np.zeros((8, 2)))

    def test_rejects_non_finite(self):
        block = np.zeros((8, 3))
        block[3, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            normalize_measurement(block)

    def test_rejects_too_short(self):
        with pytest.raises(ValueError, match="at least 2"):
            normalize_measurement(np.zeros((1, 3)))

    @given(finite_blocks)
    @settings(max_examples=50, deadline=None)
    def test_normalization_is_idempotent(self, block):
        once = normalize_measurement(block)
        twice = normalize_measurement(once)
        assert np.allclose(once, twice, atol=1e-9)


class TestRMS:
    def test_rms_of_constant_block_is_zero(self):
        block = np.ones((64, 3)) * 2.5
        assert rms_feature(block) == pytest.approx(0.0, abs=1e-12)

    def test_rms_per_axis_equals_std(self):
        gen = np.random.default_rng(0)
        block = gen.normal(0.0, 1.0, size=(2048, 3))
        per_axis = rms_per_axis(block)
        assert np.allclose(per_axis, block.std(axis=0), atol=1e-10)

    def test_rms_combines_axes_quadratically(self):
        block = make_sine_block(amplitude=1.0, num_samples=4000)
        per_axis = rms_per_axis(block)
        assert rms_feature(block) == pytest.approx(float(np.sqrt((per_axis**2).sum())))

    def test_rms_scales_linearly_with_amplitude(self):
        small = rms_feature(make_sine_block(amplitude=0.1))
        large = rms_feature(make_sine_block(amplitude=0.4))
        assert large == pytest.approx(4.0 * small, rel=1e-9)

    @given(finite_blocks)
    @settings(max_examples=50, deadline=None)
    def test_rms_is_offset_invariant(self, block):
        shifted = block + np.asarray([1.0, -2.0, 3.0])[None, :]
        assert rms_feature(block) == pytest.approx(rms_feature(shifted), abs=1e-8)


class TestPSD:
    def test_parseval_identity_per_axis(self):
        """The key invariant: sum of PSD bins equals rms² per axis."""
        gen = np.random.default_rng(7)
        block = gen.normal(0.0, 0.5, size=(1024, 3))
        psd = psd_feature(block, per_axis=True)
        per_axis_rms_sq = rms_per_axis(block) ** 2
        assert np.allclose(psd.sum(axis=0), per_axis_rms_sq, rtol=1e-10)

    def test_combined_psd_sums_axes(self):
        block = make_sine_block()
        combined = psd_feature(block)
        per_axis = psd_feature(block, per_axis=True)
        assert np.allclose(combined, per_axis.sum(axis=1))

    def test_pure_tone_concentrates_at_its_bin(self):
        fs, k, f0 = 4000.0, 1024, 500.0
        block = make_sine_block(freq_hz=f0, num_samples=k, sampling_rate_hz=fs)
        psd = psd_feature(block)
        freqs = psd_frequencies(k, fs)
        dominant = freqs[int(np.argmax(psd))]
        assert abs(dominant - f0) < fs / (2 * k) * 3

    def test_dc_bin_is_zero_after_normalization(self):
        block = make_sine_block(offset=(0.5, 0.5, 0.5))
        psd = psd_feature(block)
        assert psd[0] == pytest.approx(0.0, abs=1e-18)

    def test_psd_is_non_negative(self):
        gen = np.random.default_rng(3)
        block = gen.normal(size=(256, 3))
        assert (psd_feature(block) >= 0).all()

    @given(finite_blocks)
    @settings(max_examples=40, deadline=None)
    def test_parseval_property(self, block):
        psd = psd_feature(block)
        assert psd.sum() == pytest.approx(rms_feature(block) ** 2, rel=1e-8, abs=1e-10)


class TestFrequencies:
    def test_frequency_grid_spans_dc_to_nyquist(self):
        freqs = psd_frequencies(1024, 4000.0)
        assert freqs[0] == 0.0
        assert freqs[-1] == pytest.approx(4000.0 / 2 * (1023 / 1024))

    def test_monotone_increasing(self):
        freqs = psd_frequencies(64, 22000.0)
        assert (np.diff(freqs) > 0).all()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            psd_frequencies(1, 4000.0)
        with pytest.raises(ValueError):
            psd_frequencies(64, 0.0)


class TestFeatureConfig:
    def test_defaults_match_paper(self):
        config = FeatureConfig()
        assert config.sampling_rate_hz == 4000.0
        assert config.samples_per_measurement == 1024

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FeatureConfig(sampling_rate_hz=-1)
        with pytest.raises(ValueError):
            FeatureConfig(samples_per_measurement=1)

    def test_extract_features_enforces_block_length(self):
        config = FeatureConfig(samples_per_measurement=512)
        with pytest.raises(ValueError, match="K=512"):
            extract_features(make_sine_block(num_samples=1024), config)

    def test_extract_features_returns_consistent_pair(self):
        config = FeatureConfig(samples_per_measurement=1024)
        block = make_sine_block()
        rms, psd = extract_features(block, config)
        assert rms == pytest.approx(rms_feature(block))
        assert psd.shape == (1024,)


class TestWelchPSD:
    def test_parseval_like_normalization(self):
        """Sum over Welch bins approximates the signal variance, matching
        the DCT feature's convention."""
        from repro.core.features import welch_psd

        gen = np.random.default_rng(11)
        block = gen.normal(0.0, 0.5, size=(2048, 3))
        _, psd = welch_psd(block, 4000.0, nperseg=512)
        assert psd.sum() == pytest.approx(rms_feature(block) ** 2, rel=0.1)

    def test_tone_located_correctly(self):
        from repro.core.features import welch_psd

        block = make_sine_block(freq_hz=500.0, amplitude=1.0, num_samples=2048)
        freqs, psd = welch_psd(block, 4000.0, nperseg=512)
        assert abs(freqs[int(np.argmax(psd))] - 500.0) < 10.0

    def test_lower_variance_than_single_block_dct(self):
        """Welch's whole point: per-bin fluctuation across repeated noise
        measurements is smaller than the full-block estimator's."""
        from repro.core.features import welch_psd

        gen = np.random.default_rng(12)

        def spreads():
            dct_vals, welch_vals = [], []
            for _ in range(20):
                block = gen.normal(0.0, 1.0, size=(1024, 3))
                dct_vals.append(psd_feature(block)[100])
                welch_vals.append(welch_psd(block, 4000.0, nperseg=256)[1][25])
            return np.std(dct_vals) / np.mean(dct_vals), np.std(welch_vals) / np.mean(
                welch_vals
            )

        dct_cv, welch_cv = spreads()
        assert welch_cv < dct_cv

    def test_nperseg_clamped_to_block(self):
        from repro.core.features import welch_psd

        block = make_sine_block(num_samples=128)
        freqs, psd = welch_psd(block, 4000.0, nperseg=4096)
        assert freqs.size == 128 // 2 + 1

    def test_rejects_bad_nperseg(self):
        from repro.core.features import welch_psd

        with pytest.raises(ValueError):
            welch_psd(make_sine_block(), 4000.0, nperseg=1)
