"""Tests for changepoint detection (changepoint.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.changepoint import (
    Changepoint,
    detect_changepoints,
    detect_replacements,
)


def step_series(n=100, split=60, before=0.4, after=0.05, noise=0.01, seed=0):
    gen = np.random.default_rng(seed)
    series = np.concatenate([np.full(split, before), np.full(n - split, after)])
    return series + gen.normal(0, noise, size=n)


class TestDetectChangepoints:
    def test_single_step_found_at_right_place(self):
        series = step_series()
        changes = detect_changepoints(series)
        assert len(changes) == 1
        assert abs(changes[0].index - 60) <= 2
        assert changes[0].mean_before == pytest.approx(0.4, abs=0.02)
        assert changes[0].mean_after == pytest.approx(0.05, abs=0.02)
        assert changes[0].step == pytest.approx(-0.35, abs=0.03)

    def test_pure_noise_yields_no_changepoints(self):
        gen = np.random.default_rng(1)
        series = 0.2 + gen.normal(0, 0.02, size=200)
        assert detect_changepoints(series) == []

    def test_two_steps_both_found(self):
        gen = np.random.default_rng(2)
        series = np.concatenate(
            [np.full(50, 0.1), np.full(50, 0.4), np.full(50, 0.05)]
        ) + gen.normal(0, 0.01, size=150)
        changes = detect_changepoints(series)
        assert len(changes) == 2
        indices = sorted(c.index for c in changes)
        assert abs(indices[0] - 50) <= 3
        assert abs(indices[1] - 100) <= 3

    def test_gradual_trend_approximated_by_small_upward_steps(self):
        """Binary segmentation staircases a ramp — every step is small
        and upward, so no spurious *replacement* is ever called."""
        gen = np.random.default_rng(3)
        series = np.linspace(0.1, 0.4, 200) + gen.normal(0, 0.01, size=200)
        changes = detect_changepoints(series)
        assert all(c.step > 0 for c in changes)
        assert all(c.step < 0.08 for c in changes)
        assert detect_replacements(series, min_drop=0.1) == []

    def test_single_outlier_creates_no_large_regime_shift(self):
        gen = np.random.default_rng(4)
        series = 0.2 + gen.normal(0, 0.01, size=100)
        series[50] = 2.0  # single spike, not a regime change
        changes = detect_changepoints(series, min_segment=5)
        # A boundary may land next to the spike, but the implied level
        # shift stays tiny — nothing a min_drop filter would act on.
        assert all(abs(c.step) < 0.06 for c in changes)
        assert detect_replacements(series, min_drop=0.1, min_segment=5) == []

    def test_short_series_returns_empty(self):
        assert detect_changepoints(np.ones(6), min_segment=5) == []

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            detect_changepoints(np.asarray([1.0, np.nan, 2.0]))
        with pytest.raises(ValueError):
            detect_changepoints(np.ones(20), min_segment=1)
        with pytest.raises(ValueError):
            detect_changepoints(np.ones(20), penalty_scale=0)

    def test_constant_series_no_changes(self):
        assert detect_changepoints(np.full(50, 0.3)) == []

    @given(
        st.integers(10, 60),
        st.floats(0.2, 1.0),
        st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_planted_step_recovered(self, split, step_size, seed):
        """Any sufficiently large planted step is found near its index."""
        n = 120
        series = step_series(
            n=n, split=split, before=step_size, after=0.0, noise=0.01, seed=seed
        )
        changes = detect_changepoints(series)
        assert changes, "step missed entirely"
        nearest = min(changes, key=lambda c: abs(c.index - split))
        assert abs(nearest.index - split) <= 3


class TestDetectReplacements:
    def test_replacement_drop_detected(self):
        series = step_series(before=0.4, after=0.05)
        replacements = detect_replacements(series, min_drop=0.1)
        assert len(replacements) == 1
        assert abs(replacements[0] - 60) <= 2

    def test_upward_step_is_not_a_replacement(self):
        series = step_series(before=0.05, after=0.4)  # degradation jump
        assert detect_replacements(series, min_drop=0.1) == []

    def test_small_drop_below_threshold_ignored(self):
        series = step_series(before=0.2, after=0.15, noise=0.005)
        assert detect_replacements(series, min_drop=0.1) == []

    def test_rejects_bad_min_drop(self):
        with pytest.raises(ValueError):
            detect_replacements(np.ones(30), min_drop=0.0)

    def test_on_simulated_pump_with_replacement(self):
        """End-to-end: a simulated pump's D_a drop at replacement is
        recovered from the feature series alone."""
        from repro.core.classify import PeakHarmonicFeature
        from repro.core.features import psd_feature, psd_frequencies
        from repro.simulation.mems import MEMSSensor
        from repro.simulation.signal import VibrationSynthesizer

        gen = np.random.default_rng(5)
        synth = VibrationSynthesizer()
        sensor = MEMSSensor(rng=np.random.default_rng(6))
        freqs = psd_frequencies(1024, 4000.0)

        ref = np.stack(
            [psd_feature(sensor.measure_g(synth.synthesize(0.05, 1024, 4000.0, gen), 0.0, 4000.0))
             for _ in range(8)]
        )
        feature = PeakHarmonicFeature().fit(ref, freqs)

        # 30 worn measurements, replacement, 30 healthy measurements.
        wears = np.concatenate([np.linspace(0.7, 1.0, 30), np.linspace(0.0, 0.15, 30)])
        da = np.asarray(
            [
                feature.score(
                    psd_feature(
                        sensor.measure_g(synth.synthesize(w, 1024, 4000.0, gen), i, 4000.0)
                    ),
                    freqs,
                )
                for i, w in enumerate(wears)
            ]
        )
        replacements = detect_replacements(da, min_drop=0.15)
        assert len(replacements) >= 1
        assert any(abs(r - 30) <= 4 for r in replacements)
