"""Tests for classical condition indicators (spectral.py)."""

import numpy as np
import pytest

from repro.core.features import psd_feature, psd_frequencies
from repro.core.spectral import (
    band_energies,
    condition_indicators,
    crest_factor,
    kurtosis,
    peak_to_peak,
    spectral_centroid,
    spectral_entropy,
)
from repro.simulation.signal import VibrationSynthesizer
from tests.conftest import make_sine_block

FS = 4000.0
K = 1024


class TestCrestFactor:
    def test_sinusoid_is_sqrt_two(self):
        block = make_sine_block(amplitude=1.0, num_samples=4000)
        # Combined 3-axis magnitude of proportional axes is a rectified
        # sinusoid; its crest factor is sqrt(2).
        assert crest_factor(block) == pytest.approx(np.sqrt(2.0), rel=0.02)

    def test_impulsive_signal_has_higher_crest(self):
        gen = np.random.default_rng(0)
        smooth = gen.normal(0, 1, size=(2048, 3))
        impulsive = smooth.copy()
        impulsive[100] += 30.0
        assert crest_factor(impulsive) > 2 * crest_factor(smooth)

    def test_constant_block_is_zero(self):
        assert crest_factor(np.ones((64, 3))) == 0.0


class TestKurtosis:
    def test_gaussian_near_zero(self):
        gen = np.random.default_rng(1)
        block = gen.normal(0, 1, size=(20000, 3))
        assert abs(kurtosis(block)) < 0.1

    def test_impulsive_positive(self):
        gen = np.random.default_rng(2)
        block = gen.normal(0, 0.1, size=(4096, 3))
        block[::500] += 5.0
        assert kurtosis(block) > 3.0

    def test_sinusoid_negative(self):
        block = make_sine_block(amplitude=1.0, noise=0.0, num_samples=4000)
        assert kurtosis(block) < 0.0

    def test_constant_block_is_zero(self):
        assert kurtosis(np.full((64, 3), 2.0)) == 0.0


class TestPeakToPeak:
    def test_sinusoid_swing(self):
        block = make_sine_block(amplitude=0.5, noise=0.0, num_samples=4000)
        assert peak_to_peak(block) == pytest.approx(1.0, rel=0.02)

    def test_offset_invariant(self):
        block = make_sine_block(amplitude=0.5, offset=(3.0, -2.0, 5.0))
        base = make_sine_block(amplitude=0.5, offset=(0.0, 0.0, 0.0))
        assert peak_to_peak(block) == pytest.approx(peak_to_peak(base))


class TestBandEnergies:
    def test_partitions_total_energy(self):
        gen = np.random.default_rng(3)
        block = gen.normal(size=(K, 3))
        psd = psd_feature(block)
        freqs = psd_frequencies(K, FS)
        bands = band_energies(psd, freqs, (0.0, 500.0, 1000.0, 2000.0 + 1))
        assert bands.sum() == pytest.approx(psd.sum(), rel=1e-9)

    def test_tone_lands_in_its_band(self):
        block = make_sine_block(freq_hz=750.0, amplitude=1.0)
        psd = psd_feature(block)
        freqs = psd_frequencies(K, FS)
        bands = band_energies(psd, freqs, (0.0, 500.0, 1000.0, 2001.0))
        assert bands[1] > 10 * (bands[0] + bands[2])

    def test_rejects_bad_edges(self):
        psd = np.ones(8)
        freqs = np.arange(8.0)
        with pytest.raises(ValueError):
            band_energies(psd, freqs, (5.0,))
        with pytest.raises(ValueError):
            band_energies(psd, freqs, (5.0, 1.0))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            band_energies(np.ones(8), np.arange(4.0), (0.0, 2.0))


class TestSpectralCentroid:
    def test_tone_centroid_at_tone(self):
        block = make_sine_block(freq_hz=900.0, amplitude=1.0, noise=0.001)
        psd = psd_feature(block)
        freqs = psd_frequencies(K, FS)
        assert spectral_centroid(psd, freqs) == pytest.approx(900.0, abs=60.0)

    def test_degradation_raises_centroid(self):
        gen = np.random.default_rng(4)
        synth = VibrationSynthesizer()
        freqs = psd_frequencies(K, FS)
        healthy = np.mean(
            [
                spectral_centroid(psd_feature(synth.synthesize(0.05, K, FS, gen)), freqs)
                for _ in range(8)
            ]
        )
        worn = np.mean(
            [
                spectral_centroid(psd_feature(synth.synthesize(1.0, K, FS, gen)), freqs)
                for _ in range(8)
            ]
        )
        assert worn > healthy

    def test_zero_psd(self):
        assert spectral_centroid(np.zeros(8), np.arange(8.0)) == 0.0


class TestSpectralEntropy:
    def test_bounds(self):
        flat = spectral_entropy(np.ones(256))
        peaky = np.zeros(256)
        peaky[10] = 1.0
        concentrated = spectral_entropy(peaky)
        assert flat == pytest.approx(1.0, abs=1e-9)
        assert concentrated == pytest.approx(0.0, abs=1e-9)

    def test_harmonic_spectrum_below_noise_spectrum(self):
        tone = psd_feature(make_sine_block(amplitude=1.0, noise=0.001))
        gen = np.random.default_rng(5)
        noise = psd_feature(gen.normal(0, 1, size=(K, 3)))
        assert spectral_entropy(tone) < spectral_entropy(noise)

    def test_degenerate_inputs(self):
        assert spectral_entropy(np.zeros(8)) == 0.0
        assert spectral_entropy(np.ones(1)) == 0.0


class TestConditionIndicators:
    def test_bundle_is_complete_and_finite(self):
        block = make_sine_block(noise=0.05)
        bundle = condition_indicators(block, FS)
        values = bundle.as_dict()
        assert set(values) == {
            "rms",
            "crest_factor",
            "kurtosis",
            "peak_to_peak",
            "spectral_centroid_hz",
            "spectral_entropy",
            "high_frequency_energy",
        }
        assert all(np.isfinite(v) for v in values.values())

    def test_indicators_track_degradation(self):
        gen = np.random.default_rng(6)
        synth = VibrationSynthesizer()

        def mean_bundle(wear):
            bundles = [
                condition_indicators(synth.synthesize(wear, K, FS, gen), FS)
                for _ in range(6)
            ]
            return {
                key: np.mean([b.as_dict()[key] for b in bundles])
                for key in bundles[0].as_dict()
            }

        healthy = mean_bundle(0.05)
        worn = mean_bundle(1.0)
        assert worn["rms"] > healthy["rms"]
        assert worn["high_frequency_energy"] > healthy["high_frequency_energy"]
        assert worn["peak_to_peak"] > healthy["peak_to_peak"]


class TestEnvelopeSpectrum:
    def test_detects_modulation_rate_of_impacts(self):
        """An impact train at f_rep amplitude-modulating a high carrier
        shows a peak at f_rep in the envelope spectrum."""
        from repro.core.spectral import envelope_spectrum

        fs, k = 4000.0, 4096
        f_carrier, f_rep = 1500.0, 87.0
        t = np.arange(k) / fs
        modulation = 0.5 * (1 + np.sign(np.sin(2 * np.pi * f_rep * t)))
        signal = modulation * np.sin(2 * np.pi * f_carrier * t)
        block = np.stack([signal, signal, signal], axis=1)

        freqs, env_psd = envelope_spectrum(block, fs)
        band = (freqs > 20) & (freqs < 400)
        dominant = freqs[band][np.argmax(env_psd[band])]
        assert abs(dominant - f_rep) < 10.0

    def test_unmodulated_carrier_has_flat_envelope(self):
        from repro.core.spectral import envelope_spectrum

        fs, k = 4000.0, 4096
        t = np.arange(k) / fs
        signal = np.sin(2 * np.pi * 1500.0 * t)
        block = np.stack([signal, signal, signal], axis=1)
        freqs, env_psd = envelope_spectrum(block, fs)
        band = (freqs > 20) & (freqs < 400)
        # Envelope of a pure tone is constant: negligible in-band energy
        # relative to the modulated case.
        assert env_psd[band].max() < 1e-3

    def test_out_of_band_carrier_is_rejected(self):
        from repro.core.spectral import envelope_spectrum

        fs, k = 4000.0, 2048
        t = np.arange(k) / fs
        modulation = 0.5 * (1 + np.sin(2 * np.pi * 50.0 * t))
        low_carrier = modulation * np.sin(2 * np.pi * 100.0 * t)
        block = np.stack([low_carrier] * 3, axis=1)
        freqs, env_psd = envelope_spectrum(block, fs, carrier_band_hz=(1000.0, 2000.0))
        # Only spectral leakage of the non-bin-aligned tone reaches the
        # band; the signal's own power (~0.1 g^2) must be rejected by
        # several orders of magnitude.
        assert env_psd.sum() < 1e-3

    def test_rejects_bad_band(self):
        from repro.core.spectral import envelope_spectrum

        block = np.zeros((128, 3))
        with pytest.raises(ValueError):
            envelope_spectrum(block, 4000.0, carrier_band_hz=(500.0, 100.0))

    def test_bearing_defect_visible_in_envelope(self):
        """The simulated bearing fault's defect rate appears in the
        envelope of the resonance band."""
        from repro.core.spectral import envelope_spectrum
        from repro.simulation.faults import FaultInjector, FaultSpec, FaultType

        injector = FaultInjector()
        gen = np.random.default_rng(0)
        # Synthesize an impact-like bearing signature manually: the
        # injector's tones model spectral lines; for the envelope test we
        # modulate a resonance by the defect rate explicitly.
        fs, k = 4000.0, 4096
        f0 = injector.profile.rotation_hz
        f_defect = injector.profile.bearing_tone_ratios[0] * f0
        t = np.arange(k) / fs
        impacts = (np.sin(2 * np.pi * f_defect * t) > 0.95).astype(float)
        resonance = impacts * np.sin(2 * np.pi * 1400.0 * t)
        base = injector.synthesize(FaultSpec(FaultType.NONE), k, fs, gen, wear=0.1)
        block = base + 0.8 * resonance[:, None]

        freqs, env_psd = envelope_spectrum(block, fs)
        band = (freqs > 30) & (freqs < 300)
        dominant = freqs[band][np.argmax(env_psd[band])]
        assert abs(dominant - f_defect) < 12.0
