"""Tests for the Fig. 7 layered pipeline (pipeline.py)."""

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline, PipelineConfig


@pytest.fixture(scope="module")
def fleet_inputs(small_fleet):
    pumps, service, samples = small_fleet.measurement_arrays()
    _, labels = small_fleet.expert_labels({"A": 30, "BC": 30, "D": 20})
    return small_fleet, pumps, service, samples, labels


class TestLayers:
    def test_transform_shapes(self, fleet_inputs):
        _, pumps, service, samples, _ = fleet_inputs
        pipeline = AnalysisPipeline()
        offsets, rms, psd = pipeline.transform(samples)
        n, k = samples.shape[0], samples.shape[1]
        assert offsets.shape == (n, 3)
        assert rms.shape == (n,)
        assert psd.shape == (n, k)

    def test_transform_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AnalysisPipeline().transform(np.zeros((4, 16, 2)))

    def test_preprocess_keeps_stable_sensors(self, fleet_inputs):
        _, pumps, service, samples, _ = fleet_inputs
        pipeline = AnalysisPipeline()
        offsets, _, _ = pipeline.transform(samples)
        valid = pipeline.preprocess(pumps, offsets, service)
        # This fleet has only stable sensors: nearly everything is valid.
        assert valid.mean() > 0.95

    def test_frequencies_respect_config(self):
        pipeline = AnalysisPipeline(PipelineConfig(sampling_rate_hz=8000.0))
        freqs = pipeline.frequencies(512)
        assert freqs[-1] == pytest.approx(8000.0 / 2 * 511 / 512)


class TestRun:
    def test_full_run_produces_consistent_artifacts(self, fleet_inputs):
        _, pumps, service, samples, labels = fleet_inputs
        pipeline = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25))
        result = pipeline.run(pumps, service, samples, labels)
        n = pumps.shape[0]
        assert result.valid_mask.shape == (n,)
        assert result.da.shape == (n,)
        assert result.zones.shape == (n,)
        assert np.isfinite(result.da[result.valid_mask]).all()
        assert np.isnan(result.da[~result.valid_mask]).all()
        assert len(result.zone_thresholds) == 2
        assert result.zone_thresholds[0] < result.zone_thresholds[1]

    def test_predicted_zones_correlate_with_truth(self, fleet_inputs):
        dataset, pumps, service, samples, labels = fleet_inputs
        pipeline = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25))
        result = pipeline.run(pumps, service, samples, labels)
        valid = result.valid_mask
        accuracy = (result.zones[valid] == dataset.true_zone[valid]).mean()
        assert accuracy > 0.6

    def test_rul_predictions_cover_pumps(self, fleet_inputs):
        _, pumps, service, samples, labels = fleet_inputs
        pipeline = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25))
        result = pipeline.run(pumps, service, samples, labels)
        if result.lifetime_models:
            assert set(result.rul) <= set(int(p) for p in pumps)
            for prediction in result.rul.values():
                assert np.isfinite(prediction.rul_days) or prediction.rul_days == np.inf

    def test_moving_average_smooths_da(self, fleet_inputs):
        _, pumps, service, samples, labels = fleet_inputs
        raw = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25)).run(
            pumps, service, samples, labels
        )
        smoothed = AnalysisPipeline(
            PipelineConfig(moving_average_window=5, ransac_min_inliers=25)
        ).run(pumps, service, samples, labels)
        # Per-pump variance of first differences must not grow.
        pump = pumps[0]
        member = np.nonzero((pumps == pump) & raw.valid_mask)[0]
        order = member[np.argsort(service[member])]
        raw_rough = np.diff(raw.da[order]).std()
        smooth_rough = np.diff(smoothed.da[order]).std()
        assert smooth_rough <= raw_rough + 1e-12

    def test_rejects_empty_labels(self, fleet_inputs):
        _, pumps, service, samples, _ = fleet_inputs
        with pytest.raises(ValueError, match="train_labels"):
            AnalysisPipeline().run(pumps, service, samples, {})

    def test_rejects_out_of_range_label_indices(self, fleet_inputs):
        _, pumps, service, samples, _ = fleet_inputs
        with pytest.raises(ValueError, match="invalid indices"):
            AnalysisPipeline().run(
                pumps, service, samples, {10**9: "A"}
            )

    def test_rejects_misaligned_arrays(self, fleet_inputs):
        _, pumps, service, samples, labels = fleet_inputs
        with pytest.raises(ValueError, match="align"):
            AnalysisPipeline().run(pumps[:-1], service, samples, labels)


class TestEpochSplitting:
    def test_service_reset_isolates_sensor_epochs(self):
        """A pump replacement (service-time reset) must not poison the
        new sensor's offset regime."""
        gen = np.random.default_rng(0)

        def blocks_with_offset(n, offset):
            out = []
            for _ in range(n):
                block = gen.normal(0, 0.05, size=(128, 3))
                block += np.asarray(offset)[None, :]
                out.append(block)
            return np.stack(out)

        # Epoch 1: offset A; epoch 2 (after replacement): offset B.
        samples = np.concatenate(
            [
                blocks_with_offset(30, (0.1, -0.2, 1.0)),
                blocks_with_offset(30, (0.9, 0.4, 0.3)),
            ]
        )
        pumps = np.zeros(60, dtype=int)
        service = np.concatenate([np.arange(30.0), np.arange(30.0)])

        pipeline = AnalysisPipeline()
        offsets, _, _ = pipeline.transform(samples)

        with_epochs = pipeline.preprocess(pumps, offsets, service)
        assert with_epochs.all(), "both epochs are individually stable"

        without_epochs = pipeline.preprocess(pumps, offsets, None)
        # Without epoch awareness, one regime gets flagged wholesale.
        assert without_epochs.sum() <= 30
