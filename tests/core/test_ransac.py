"""Tests for RANSAC and Recursive RANSAC (ransac.py)."""

import numpy as np
import pytest

from repro.core.ransac import (
    LineModel,
    RANSACRegressor,
    RecursiveRANSAC,
    fit_line_least_squares,
)


def planted_line(slope, intercept, n, noise, seed, x_max=100.0):
    gen = np.random.default_rng(seed)
    x = gen.uniform(0, x_max, size=n)
    z = slope * x + intercept + gen.normal(0, noise, size=n)
    return x, z


class TestLeastSquares:
    def test_exact_fit_on_noiseless_line(self):
        x = np.asarray([0.0, 1.0, 2.0, 3.0])
        z = 2.0 * x + 1.0
        slope, intercept = fit_line_least_squares(x, z)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_line_least_squares([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_line_least_squares([1.0, 1.0], [0.0, 2.0])
        with pytest.raises(ValueError):
            fit_line_least_squares([1.0, 2.0], [1.0])


class TestLineModel:
    def test_predict(self):
        model = LineModel(2.0, 1.0, np.arange(3), 0.1)
        assert model.predict(3.0) == pytest.approx(7.0)

    def test_crossing_time(self):
        model = LineModel(0.01, 0.1, np.arange(3), 0.1)
        assert model.crossing_time(0.2) == pytest.approx(10.0)

    def test_crossing_time_flat_line(self):
        flat = LineModel(0.0, 0.1, np.arange(3), 0.1)
        assert flat.crossing_time(0.5) == np.inf
        assert flat.crossing_time(0.05) == 0.0

    def test_residuals(self):
        model = LineModel(1.0, 0.0, np.arange(2), 0.1)
        res = model.residuals(np.asarray([1.0, 2.0]), np.asarray([1.5, 1.0]))
        assert np.allclose(res, [0.5, 1.0])


class TestRANSAC:
    def test_recovers_planted_line_under_outliers(self):
        x, z = planted_line(0.02, 0.5, n=100, noise=0.01, seed=0)
        gen = np.random.default_rng(1)
        outlier_idx = gen.choice(100, size=30, replace=False)
        z = z.copy()
        z[outlier_idx] += gen.uniform(1.0, 3.0, size=30)
        model = RANSACRegressor(residual_threshold=0.05, seed=2).fit(x, z)
        assert model is not None
        assert model.slope == pytest.approx(0.02, rel=0.15)
        assert model.intercept == pytest.approx(0.5, abs=0.1)
        # The planted inliers dominate the consensus set.
        assert model.n_inliers >= 60

    def test_least_squares_would_fail_here(self):
        """Sanity: the contamination really does break plain OLS."""
        x, z = planted_line(0.02, 0.5, n=100, noise=0.01, seed=0)
        gen = np.random.default_rng(1)
        z = z.copy()
        z[gen.choice(100, size=30, replace=False)] += gen.uniform(1.0, 3.0, size=30)
        slope, _ = fit_line_least_squares(x, z)
        assert abs(slope - 0.02) > 0.001

    def test_min_slope_constraint_rejects_decreasing_trends(self):
        x, z = planted_line(-0.05, 5.0, n=60, noise=0.01, seed=3)
        model = RANSACRegressor(residual_threshold=0.05, min_slope=1e-6, seed=0).fit(x, z)
        assert model is None or model.slope >= 1e-6

    def test_returns_none_for_too_few_points(self):
        assert RANSACRegressor().fit(np.asarray([1.0]), np.asarray([1.0])) is None

    def test_default_threshold_from_mad(self):
        x, z = planted_line(0.02, 0.5, n=80, noise=0.02, seed=4)
        model = RANSACRegressor(seed=0).fit(x, z)
        assert model is not None
        assert model.residual_threshold > 0

    def test_deterministic_with_seed(self):
        x, z = planted_line(0.02, 0.5, n=80, noise=0.05, seed=5)
        m1 = RANSACRegressor(seed=42).fit(x, z)
        m2 = RANSACRegressor(seed=42).fit(x, z)
        assert m1.slope == m2.slope
        assert np.array_equal(m1.inlier_indices, m2.inlier_indices)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RANSACRegressor(max_trials=0)
        with pytest.raises(ValueError):
            RANSACRegressor(residual_threshold=0.0)

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(ValueError):
            RANSACRegressor().fit(np.ones(3), np.ones(4))


class TestRecursiveRANSAC:
    def test_discovers_two_planted_populations(self):
        """The Fig. 15 scenario: two linear lifetime models in one scatter."""
        x1, z1 = planted_line(0.0006, 0.05, n=200, noise=0.01, seed=0, x_max=500)
        x2, z2 = planted_line(0.0018, 0.05, n=120, noise=0.01, seed=1, x_max=170)
        x = np.concatenate([x1, x2])
        z = np.concatenate([z1, z2])
        rr = RecursiveRANSAC(residual_threshold=0.03, min_inliers=50, min_slope=1e-5, seed=0)
        models = rr.fit(x, z)
        assert len(models) == 2
        slopes = sorted(m.slope for m in models)
        assert slopes[0] == pytest.approx(0.0006, rel=0.3)
        assert slopes[1] == pytest.approx(0.0018, rel=0.3)

    def test_inlier_sets_are_disjoint(self):
        x1, z1 = planted_line(0.001, 0.0, n=100, noise=0.005, seed=2, x_max=400)
        x2, z2 = planted_line(0.004, 0.0, n=100, noise=0.005, seed=3, x_max=150)
        x = np.concatenate([x1, x2])
        z = np.concatenate([z1, z2])
        models = RecursiveRANSAC(
            residual_threshold=0.02, min_inliers=40, min_slope=1e-5, seed=0
        ).fit(x, z)
        seen = set()
        for model in models:
            current = set(model.inlier_indices.tolist())
            assert not (seen & current)
            seen |= current

    def test_stops_on_pure_noise(self):
        gen = np.random.default_rng(4)
        x = gen.uniform(0, 100, size=200)
        z = gen.uniform(0, 1, size=200)
        models = RecursiveRANSAC(
            residual_threshold=0.01, min_inliers=80, min_slope=1e-4, seed=0
        ).fit(x, z)
        assert len(models) <= 1

    def test_respects_max_models(self):
        x, z = planted_line(0.001, 0.0, n=300, noise=0.3, seed=5)
        models = RecursiveRANSAC(
            residual_threshold=0.2, min_inliers=5, max_models=2, seed=0
        ).fit(x, z)
        assert len(models) <= 2

    def test_models_sorted_by_support(self):
        x1, z1 = planted_line(0.001, 0.0, n=200, noise=0.005, seed=6, x_max=400)
        x2, z2 = planted_line(0.005, 0.0, n=60, noise=0.005, seed=7, x_max=150)
        models = RecursiveRANSAC(
            residual_threshold=0.02, min_inliers=30, min_slope=1e-5, seed=0
        ).fit(np.concatenate([x1, x2]), np.concatenate([z1, z2]))
        supports = [m.n_inliers for m in models]
        assert supports == sorted(supports, reverse=True)

    def test_assign_points_to_models(self):
        x1, z1 = planted_line(0.001, 0.0, n=100, noise=0.003, seed=8, x_max=400)
        x2, z2 = planted_line(0.004, 0.0, n=100, noise=0.003, seed=9, x_max=150)
        x = np.concatenate([x1, x2])
        z = np.concatenate([z1, z2])
        rr = RecursiveRANSAC(residual_threshold=0.02, min_inliers=40, min_slope=1e-5, seed=0)
        models = rr.fit(x, z)
        assigned = rr.assign(models, x, z)
        assert assigned.shape == (200,)
        assert (assigned >= -1).all()
        assert (assigned < len(models)).all()
        # Far-away points get no model.
        far = rr.assign(models, np.asarray([50.0]), np.asarray([10.0]))
        assert far[0] == -1

    def test_assign_with_no_models(self):
        rr = RecursiveRANSAC()
        assigned = rr.assign([], np.ones(3), np.ones(3))
        assert (assigned == -1).all()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RecursiveRANSAC(min_inliers=1)
        with pytest.raises(ValueError):
            RecursiveRANSAC(max_models=0)
