"""Tests for invalid-measurement detection on offsets (outliers.py, Fig. 8)."""

import numpy as np
import pytest

from repro.core.outliers import OutlierConfig, detect_invalid_measurements, stability_report


def stable_offsets(n=60, center=(0.1, -0.2, 0.98), noise=0.005, seed=0):
    gen = np.random.default_rng(seed)
    return np.asarray(center)[None, :] + gen.normal(0, noise, size=(n, 3))


class TestDetectInvalid:
    def test_stable_sensor_has_no_invalid_measurements(self):
        invalid = detect_invalid_measurements(stable_offsets())
        assert not invalid.any()

    def test_abrupt_jump_segment_is_flagged(self):
        """Fig. 8b: an offset jump mid-trace marks the smaller regime invalid."""
        offsets = stable_offsets(n=80)
        offsets[60:] += np.asarray([0.8, -0.5, 0.4])  # jump
        invalid = detect_invalid_measurements(offsets)
        assert invalid[60:].all()
        assert not invalid[:60].any()

    def test_majority_regime_wins_regardless_of_order(self):
        offsets = stable_offsets(n=80)
        offsets[:20] += np.asarray([0.9, 0.0, 0.0])  # early bad segment
        invalid = detect_invalid_measurements(offsets)
        assert invalid[:20].all()
        assert not invalid[20:].any()

    def test_far_drift_tail_is_flagged(self):
        offsets = stable_offsets(n=100, noise=0.002)
        drift = np.linspace(0, 1.2, 100)[:, None] * np.asarray([1.0, 0.2, -0.1])
        offsets = offsets + drift
        invalid = detect_invalid_measurements(offsets)
        # A long drift has no single true regime: the detector must
        # exclude a substantial part of the trace (the stretches far from
        # the dominant offset cluster) while keeping one coherent regime.
        assert invalid.mean() > 0.25
        assert (~invalid).sum() >= 10

    def test_empty_and_singleton_inputs(self):
        assert detect_invalid_measurements(np.empty((0, 3))).shape == (0,)
        assert not detect_invalid_measurements(np.asarray([[0.0, 0.0, 1.0]])).any()

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            detect_invalid_measurements(np.zeros((5, 2)))

    def test_custom_bandwidth_changes_sensitivity(self):
        offsets = stable_offsets(n=40)
        offsets[30:] += 0.2  # modest shift
        tight = detect_invalid_measurements(offsets, OutlierConfig(bandwidth=0.05))
        loose = detect_invalid_measurements(offsets, OutlierConfig(bandwidth=2.0))
        assert tight.sum() >= loose.sum()
        assert not loose.any()


class TestOutlierConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            OutlierConfig(bandwidth=-1.0)
        with pytest.raises(ValueError):
            OutlierConfig(min_main_fraction=0.0)
        with pytest.raises(ValueError):
            OutlierConfig(max_offset_jump=0.0)


class TestStabilityReport:
    def test_stable_sensor_report(self):
        report = stability_report(stable_offsets())
        assert report["stable"]
        assert report["n_clusters"] == 1
        assert report["invalid_fraction"] == 0.0

    def test_unstable_sensor_report(self):
        offsets = stable_offsets(n=60)
        offsets[40:] += np.asarray([1.0, 0.0, 0.0])
        report = stability_report(offsets)
        assert not report["stable"]
        assert report["n_clusters"] >= 2
        assert report["invalid_fraction"] > 0.2

    def test_main_offset_matches_dominant_center(self):
        offsets = stable_offsets(center=(0.2, 0.3, 0.9), noise=0.002)
        report = stability_report(offsets)
        assert np.allclose(report["main_offset"], [0.2, 0.3, 0.9], atol=0.01)


class TestLargeTraceSubsampling:
    def test_large_stable_trace_all_valid(self):
        offsets = stable_offsets(n=5000, noise=0.004, seed=7)
        invalid = detect_invalid_measurements(
            offsets, OutlierConfig(max_cluster_points=500)
        )
        assert not invalid.any()

    def test_large_trace_jump_still_detected(self):
        offsets = stable_offsets(n=4000, noise=0.004, seed=8)
        offsets[3000:] += np.asarray([0.9, -0.4, 0.3])
        invalid = detect_invalid_measurements(
            offsets, OutlierConfig(max_cluster_points=500)
        )
        assert invalid[3000:].all()
        assert not invalid[:3000].any()

    def test_subsampled_matches_full_on_boundary_case(self):
        """At exactly max_cluster_points the full path runs; one more
        point flips to subsampling — results must agree."""
        offsets = stable_offsets(n=200, noise=0.004, seed=9)
        offsets[150:] += np.asarray([0.8, 0.0, 0.0])
        full = detect_invalid_measurements(
            offsets, OutlierConfig(max_cluster_points=200)
        )
        sub = detect_invalid_measurements(
            offsets, OutlierConfig(max_cluster_points=100)
        )
        assert np.array_equal(full, sub)

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            OutlierConfig(max_cluster_points=5)
