"""Tests for zone classification (classify.py)."""

import numpy as np
import pytest

from repro.core.classify import (
    ZONE_A,
    ZONE_BC,
    ZONE_D,
    ZONES,
    EuclideanFeature,
    MahalanobisFeature,
    OrderedThresholdClassifier,
    PeakHarmonicFeature,
    ZoneClassifier,
)
from repro.core.features import psd_feature, psd_frequencies
from repro.simulation.signal import VibrationSynthesizer

FS = 4000.0
K = 1024


def zone_psds(wear: float, n: int, seed: int) -> np.ndarray:
    """PSDs of synthetic measurements at a given wear level."""
    gen = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    blocks = [synth.synthesize(wear, K, FS, gen) for _ in range(n)]
    return np.stack([psd_feature(b) for b in blocks])


@pytest.fixture(scope="module")
def labelled_psds():
    psds = np.vstack(
        [zone_psds(0.05, 12, seed=1), zone_psds(0.55, 12, seed=2), zone_psds(1.0, 12, seed=3)]
    )
    labels = np.asarray([ZONE_A] * 12 + [ZONE_BC] * 12 + [ZONE_D] * 12, dtype=object)
    freqs = psd_frequencies(K, FS)
    return psds, labels, freqs


class TestOrderedThresholdClassifier:
    def test_learns_ordered_boundaries(self):
        values = np.asarray([0.1, 0.2, 0.5, 0.6, 0.9, 1.0])
        labels = np.asarray([ZONE_A, ZONE_A, ZONE_BC, ZONE_BC, ZONE_D, ZONE_D])
        clf = OrderedThresholdClassifier().fit(values, labels)
        assert clf.thresholds_ is not None
        assert clf.thresholds_[0] < clf.thresholds_[1]

    def test_predicts_training_data_when_separable(self):
        values = np.asarray([0.1, 0.2, 0.5, 0.6, 0.9, 1.0])
        labels = np.asarray([ZONE_A, ZONE_A, ZONE_BC, ZONE_BC, ZONE_D, ZONE_D])
        clf = OrderedThresholdClassifier().fit(values, labels)
        assert (clf.predict(values) == labels).all()

    def test_extreme_values_get_extreme_classes(self):
        values = np.asarray([0.1, 0.5, 0.9])
        labels = np.asarray([ZONE_A, ZONE_BC, ZONE_D])
        clf = OrderedThresholdClassifier().fit(values, labels)
        assert clf.predict(np.asarray([-10.0]))[0] == ZONE_A
        assert clf.predict(np.asarray([10.0]))[0] == ZONE_D

    def test_missing_class_raises(self):
        clf = OrderedThresholdClassifier()
        with pytest.raises(ValueError, match="no training samples"):
            clf.fit(np.asarray([0.1, 0.9]), np.asarray([ZONE_A, ZONE_D]))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            OrderedThresholdClassifier().predict(np.asarray([0.5]))

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            OrderedThresholdClassifier().fit(np.ones(3), np.asarray([ZONE_A] * 2))

    def test_rejects_degenerate_class_config(self):
        with pytest.raises(ValueError):
            OrderedThresholdClassifier(classes=("A",))
        with pytest.raises(ValueError):
            OrderedThresholdClassifier(classes=("A", "A"))

    def test_two_class_configuration(self):
        clf = OrderedThresholdClassifier(classes=(ZONE_BC, ZONE_D))
        clf.fit(np.asarray([0.1, 0.2, 0.8, 0.9]), np.asarray([ZONE_BC, ZONE_BC, ZONE_D, ZONE_D]))
        assert clf.predict(np.asarray([0.15]))[0] == ZONE_BC
        assert clf.predict(np.asarray([0.85]))[0] == ZONE_D


class TestPeakHarmonicFeature:
    def test_da_grows_with_degradation(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        feature = PeakHarmonicFeature().fit(psds[labels == ZONE_A], freqs)
        mean_da = {
            zone: feature.score_many(psds[labels == zone], freqs).mean()
            for zone in ZONES
        }
        assert mean_da[ZONE_A] < mean_da[ZONE_BC] < mean_da[ZONE_D]

    def test_score_of_baseline_mean_is_small(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        ref = psds[labels == ZONE_A]
        feature = PeakHarmonicFeature().fit(ref, freqs)
        assert feature.score(ref.mean(axis=0), freqs) < 0.05

    def test_unfitted_score_raises(self):
        with pytest.raises(RuntimeError):
            PeakHarmonicFeature().score(np.ones(8), np.arange(8.0))

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            PeakHarmonicFeature().fit(np.empty((0, 8)), np.arange(8.0))


class TestBaselineFeatures:
    def test_euclidean_zero_at_reference_mean(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        ref = psds[labels == ZONE_A]
        feature = EuclideanFeature().fit(ref, freqs)
        assert feature.score(ref.mean(axis=0), freqs) == pytest.approx(0.0)

    def test_mahalanobis_orders_zones_on_average(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        feature = MahalanobisFeature().fit(psds[labels == ZONE_A], freqs)
        d_a = feature.score_many(psds[labels == ZONE_A], freqs).mean()
        d_d = feature.score_many(psds[labels == ZONE_D], freqs).mean()
        assert d_d > d_a

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EuclideanFeature().score(np.ones(4), np.arange(4.0))
        with pytest.raises(RuntimeError):
            MahalanobisFeature().score(np.ones(4), np.arange(4.0))


class TestZoneClassifier:
    def test_end_to_end_classification_beats_chance(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        train_idx = np.r_[0:6, 12:18, 24:30]
        test_idx = np.setdiff1d(np.arange(len(labels)), train_idx)
        clf = ZoneClassifier().fit(psds[train_idx], labels[train_idx], freqs)
        pred = clf.predict(psds[test_idx], freqs)
        accuracy = (pred == labels[test_idx]).mean()
        assert accuracy > 0.7

    def test_decision_scores_are_da_values(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        clf = ZoneClassifier().fit(psds, labels, freqs)
        scores = clf.decision_scores(psds[:3], freqs)
        assert scores.shape == (3,)
        assert (scores >= 0).all()

    def test_thresholds_exposed_after_fit(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        clf = ZoneClassifier().fit(psds, labels, freqs)
        assert clf.thresholds_ is not None
        assert len(clf.thresholds_) == 2

    def test_requires_reference_class_samples(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        mask = labels != ZONE_A
        with pytest.raises(ValueError, match="baseline"):
            ZoneClassifier().fit(psds[mask], labels[mask], freqs)

    def test_works_with_alternate_feature(self, labelled_psds):
        psds, labels, freqs = labelled_psds
        clf = ZoneClassifier(feature=EuclideanFeature()).fit(psds, labels, freqs)
        pred = clf.predict(psds, freqs)
        assert set(pred) <= set(ZONES)
