"""Tests for rule-based spectral fault diagnosis (diagnosis.py)."""

import numpy as np
import pytest

from repro.core.diagnosis import (
    BEARING_DEFECT,
    HEALTHY,
    IMBALANCE,
    LOOSENESS,
    MISALIGNMENT,
    SpectralDiagnoser,
)
from repro.core.features import psd_feature, psd_frequencies
from repro.core.peaks import extract_harmonic_peaks
from repro.simulation.faults import FaultInjector, FaultSpec, FaultType

FS = 4000.0
K = 1024


@pytest.fixture(scope="module")
def setup():
    injector = FaultInjector()
    freqs = psd_frequencies(K, FS)
    rng = np.random.default_rng(0)

    def peaks_for(fault, seed):
        gen = np.random.default_rng(seed)
        psd = np.mean(
            [
                psd_feature(injector.synthesize(fault, K, FS, gen))
                for _ in range(5)
            ],
            axis=0,
        )
        return extract_harmonic_peaks(psd, freqs)

    healthy_peaks = peaks_for(FaultSpec(FaultType.NONE), seed=1)
    diagnoser = SpectralDiagnoser(injector.profile.rotation_hz)
    diagnoser.fit_baseline(healthy_peaks)
    return injector, diagnoser, peaks_for


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpectralDiagnoser(rotation_hz=0)
        with pytest.raises(ValueError):
            SpectralDiagnoser(30.0, harmonic_tolerance=0.6)
        with pytest.raises(ValueError):
            SpectralDiagnoser(30.0, healthy_margin=0)

    def test_diagnose_requires_baseline(self):
        diagnoser = SpectralDiagnoser(30.0)
        from repro.core.peaks import HarmonicPeaks

        with pytest.raises(RuntimeError):
            diagnoser.diagnose(HarmonicPeaks(np.asarray([30.0]), np.asarray([1.0])))


class TestDiagnosis:
    def test_healthy_machine_diagnosed_healthy(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(peaks_for(FaultSpec(FaultType.NONE), seed=2))
        assert diagnosis.label == HEALTHY

    def test_imbalance_detected(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(
            peaks_for(FaultSpec(FaultType.IMBALANCE, 0.9), seed=3)
        )
        assert diagnosis.label == IMBALANCE

    def test_misalignment_detected(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(
            peaks_for(FaultSpec(FaultType.MISALIGNMENT, 0.9), seed=4)
        )
        assert diagnosis.label == MISALIGNMENT

    def test_looseness_detected(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(
            peaks_for(FaultSpec(FaultType.LOOSENESS, 0.9), seed=5)
        )
        assert diagnosis.label == LOOSENESS

    def test_bearing_defect_detected(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(
            peaks_for(FaultSpec(FaultType.BEARING_DEFECT, 0.9), seed=6)
        )
        assert diagnosis.label == BEARING_DEFECT

    def test_scores_exposed_for_explainability(self, setup):
        _, diagnoser, peaks_for = setup
        diagnosis = diagnoser.diagnose(
            peaks_for(FaultSpec(FaultType.IMBALANCE, 0.9), seed=7)
        )
        assert set(diagnosis.scores) == {
            IMBALANCE,
            MISALIGNMENT,
            LOOSENESS,
            BEARING_DEFECT,
        }
        assert diagnosis.scores[IMBALANCE] == max(diagnosis.scores.values())

    def test_empty_peaks_are_healthy(self, setup):
        _, diagnoser, _ = setup
        from repro.core.peaks import HarmonicPeaks

        diagnosis = diagnoser.diagnose(HarmonicPeaks(np.empty(0), np.empty(0)))
        assert diagnosis.label == HEALTHY

    def test_accuracy_over_random_fault_mix(self, setup):
        """End-to-end diagnostic accuracy over all classes."""
        _, diagnoser, peaks_for = setup
        cases = [
            (FaultType.NONE, HEALTHY),
            (FaultType.IMBALANCE, IMBALANCE),
            (FaultType.MISALIGNMENT, MISALIGNMENT),
            (FaultType.LOOSENESS, LOOSENESS),
            (FaultType.BEARING_DEFECT, BEARING_DEFECT),
        ]
        correct = 0
        total = 0
        for seed in range(3):
            for fault_type, expected in cases:
                peaks = peaks_for(FaultSpec(fault_type, 0.9), seed=100 + seed * 10 + total)
                diagnosis = diagnoser.diagnose(peaks)
                correct += diagnosis.label == expected
                total += 1
        assert correct / total >= 0.8
