"""Tests for harmonic peak extraction (peaks.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import psd_feature, psd_frequencies
from repro.core.peaks import HarmonicPeaks, extract_harmonic_peaks
from tests.conftest import make_sine_block

FS = 4000.0
K = 1024


def psd_with_tones(tone_freqs, amplitudes, noise=0.001, seed=0):
    """PSD of a multi-tone block via the real feature path."""
    gen = np.random.default_rng(seed)
    t = np.arange(K) / FS
    mono = sum(a * np.sin(2 * np.pi * f * t) for f, a in zip(tone_freqs, amplitudes))
    block = np.stack([mono, mono, mono], axis=1)
    block += gen.normal(0, noise, size=block.shape)
    return psd_feature(block), psd_frequencies(K, FS)


class TestHarmonicPeaksType:
    def test_rejects_unsorted_frequencies(self):
        with pytest.raises(ValueError, match="increasing"):
            HarmonicPeaks(np.asarray([10.0, 5.0]), np.asarray([1.0, 1.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HarmonicPeaks(np.asarray([1.0, 2.0]), np.asarray([1.0]))

    def test_empty_feature(self):
        peaks = HarmonicPeaks(np.empty(0), np.empty(0))
        assert len(peaks) == 0
        assert peaks.max_value == 0.0
        assert peaks.max_frequency == 0.0

    def test_as_pairs_layout(self):
        peaks = HarmonicPeaks(np.asarray([10.0, 20.0]), np.asarray([3.0, 1.0]))
        pairs = peaks.as_pairs()
        assert pairs.shape == (2, 2)
        assert np.allclose(pairs[:, 0], [10.0, 20.0])
        assert np.allclose(pairs[:, 1], [3.0, 1.0])


class TestExtraction:
    def test_finds_planted_tones(self):
        tones = [300.0, 800.0, 1500.0]
        psd, freqs = psd_with_tones(tones, [1.0, 0.8, 0.6])
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=5)
        for tone in tones:
            assert (np.abs(peaks.frequencies - tone) < 30).any(), f"missed {tone} Hz"

    def test_respects_num_peaks_budget(self):
        psd, freqs = psd_with_tones([200, 400, 600, 800, 1000], [1] * 5, noise=0.01)
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=3)
        assert len(peaks) <= 3

    def test_peaks_sorted_by_frequency(self):
        psd, freqs = psd_with_tones([500, 1200, 250], [0.5, 1.0, 0.8])
        peaks = extract_harmonic_peaks(psd, freqs)
        assert (np.diff(peaks.frequencies) > 0).all()

    def test_strongest_tone_has_largest_value(self):
        psd, freqs = psd_with_tones([400.0, 1100.0], [1.0, 0.3])
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=2)
        strongest = peaks.frequencies[int(np.argmax(peaks.values))]
        assert abs(strongest - 400.0) < 30

    def test_dc_bins_are_skipped(self):
        psd = np.zeros(256)
        psd[0] = 100.0  # spurious DC energy
        psd[1] = 50.0
        psd[100] = 1.0
        freqs = psd_frequencies(256, FS)
        peaks = extract_harmonic_peaks(psd, freqs, window_size=1, skip_dc_bins=2)
        assert (peaks.frequencies > freqs[1]).all()

    def test_flat_psd_yields_no_peaks(self):
        psd = np.ones(512)
        freqs = psd_frequencies(512, FS)
        peaks = extract_harmonic_peaks(psd, freqs)
        assert len(peaks) == 0

    def test_plateau_counts_once(self):
        psd = np.zeros(128)
        psd[40:44] = 5.0  # flat-topped peak
        freqs = psd_frequencies(128, FS)
        peaks = extract_harmonic_peaks(psd, freqs, window_size=1)
        near = np.abs(peaks.frequencies - freqs[40]) < (freqs[5] - freqs[0])
        assert near.sum() == 1

    def test_smoothing_suppresses_single_bin_noise_spikes(self):
        gen = np.random.default_rng(2)
        psd = np.full(1024, 0.01)
        spike_bins = gen.choice(np.arange(10, 1014), size=200, replace=False)
        psd[spike_bins] += gen.exponential(0.05, size=200)
        # one broad true peak
        psd[500:520] += 1.0
        freqs = psd_frequencies(1024, FS)
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=1, window_size=24)
        assert 480 <= int(np.searchsorted(freqs, peaks.frequencies[0])) <= 540

    def test_rejects_bad_inputs(self):
        freqs = psd_frequencies(64, FS)
        with pytest.raises(ValueError):
            extract_harmonic_peaks(np.ones((4, 4)), freqs)
        with pytest.raises(ValueError):
            extract_harmonic_peaks(np.ones(32), freqs)
        with pytest.raises(ValueError):
            extract_harmonic_peaks(np.ones(64), freqs, num_peaks=0)
        with pytest.raises(ValueError):
            extract_harmonic_peaks(np.ones(64), freqs, skip_dc_bins=-1)

    def test_extraction_is_deterministic(self):
        psd, freqs = psd_with_tones([300, 900], [1.0, 0.5])
        p1 = extract_harmonic_peaks(psd, freqs)
        p2 = extract_harmonic_peaks(psd, freqs)
        assert np.array_equal(p1.frequencies, p2.frequencies)
        assert np.array_equal(p1.values, p2.values)

    @given(
        st.lists(st.integers(5, 500), min_size=1, max_size=8, unique=True),
        st.integers(1, 20),
        st.integers(1, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_random_spike_psds(self, spike_bins, num_peaks, window):
        psd = np.zeros(512)
        for bin_idx in spike_bins:
            psd[bin_idx] = 1.0
        freqs = psd_frequencies(512, FS)
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=num_peaks, window_size=window)
        assert len(peaks) <= num_peaks
        if len(peaks) > 1:
            assert (np.diff(peaks.frequencies) > 0).all()
        assert (peaks.values >= 0).all()


class TestOnRealisticSignal:
    def test_sine_block_roundtrip(self):
        block = make_sine_block(freq_hz=590.0, amplitude=1.0)
        psd = psd_feature(block)
        freqs = psd_frequencies(block.shape[0], FS)
        peaks = extract_harmonic_peaks(psd, freqs, num_peaks=1)
        assert len(peaks) == 1
        assert abs(peaks.frequencies[0] - 590.0) < 40
