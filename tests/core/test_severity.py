"""Tests for ISO-style velocity severity (severity.py)."""

import numpy as np
import pytest

from repro.core.severity import (
    DEFAULT_BOUNDARIES_MM_S,
    SeverityAssessment,
    assess_severity,
    velocity_rms_mm_s,
)
from repro.simulation.signal import VibrationSynthesizer

FS = 4000.0
K = 4096


def tone_block(freq_hz, accel_amplitude_g, k=K):
    t = np.arange(k) / FS
    mono = accel_amplitude_g * np.sin(2 * np.pi * freq_hz * t)
    return np.stack([mono, np.zeros(k), np.zeros(k)], axis=1)


class TestVelocityRMS:
    def test_analytic_tone_velocity(self):
        """For a pure tone a(t)=A sin(wt): v_rms = A/(w sqrt(2))."""
        freq = 100.0
        amp_g = 0.5
        block = tone_block(freq, amp_g)
        expected = amp_g * 9.80665 / (2 * np.pi * freq) / np.sqrt(2) * 1000.0
        assert velocity_rms_mm_s(block, FS) == pytest.approx(expected, rel=0.02)

    def test_same_accel_lower_frequency_means_higher_velocity(self):
        """1/w weighting: low-frequency vibration is more severe."""
        low = velocity_rms_mm_s(tone_block(50.0, 0.5), FS)
        high = velocity_rms_mm_s(tone_block(500.0, 0.5), FS)
        assert low > 5 * high

    def test_out_of_band_energy_ignored(self):
        in_band = velocity_rms_mm_s(tone_block(100.0, 0.5), FS)
        out_band = velocity_rms_mm_s(tone_block(1500.0, 0.5), FS)
        assert out_band < 0.05 * in_band

    def test_rejects_bad_band(self):
        block = tone_block(100.0, 0.5)
        with pytest.raises(ValueError):
            velocity_rms_mm_s(block, FS, band_hz=(0.0, 100.0))
        with pytest.raises(ValueError):
            velocity_rms_mm_s(block, FS, band_hz=(100.0, 50.0))


class TestAssessSeverity:
    def amplitude_for_velocity(self, target_mm_s, freq=100.0):
        """Tone acceleration amplitude giving the target velocity RMS."""
        return target_mm_s / 1000.0 * (2 * np.pi * freq) * np.sqrt(2) / 9.80665

    @pytest.mark.parametrize(
        "target_mm_s,iso_zone,pooled",
        [(1.0, "A", "A"), (3.0, "B", "BC"), (5.5, "C", "BC"), (10.0, "D", "D")],
    )
    def test_zone_mapping(self, target_mm_s, iso_zone, pooled):
        amp = self.amplitude_for_velocity(target_mm_s)
        assessment = assess_severity(tone_block(100.0, amp), FS)
        assert assessment.iso_zone == iso_zone
        assert assessment.zone == pooled
        assert assessment.velocity_rms_mm_s == pytest.approx(target_mm_s, rel=0.05)

    def test_rejects_bad_boundaries(self):
        block = tone_block(100.0, 0.5)
        with pytest.raises(ValueError):
            assess_severity(block, FS, boundaries_mm_s=(4.0, 2.0, 7.0))

    def test_degradation_raises_severity(self):
        gen = np.random.default_rng(0)
        synth = VibrationSynthesizer()
        healthy = np.mean(
            [
                velocity_rms_mm_s(synth.synthesize(0.05, 1024, FS, gen), FS)
                for _ in range(6)
            ]
        )
        worn = np.mean(
            [
                velocity_rms_mm_s(synth.synthesize(1.0, 1024, FS, gen), FS)
                for _ in range(6)
            ]
        )
        assert worn > healthy

    def test_default_boundaries_are_iso_ordered(self):
        ab, bc, cd = DEFAULT_BOUNDARIES_MM_S
        assert 0 < ab < bc < cd
