"""Tests for degradation-trajectory forecasting (forecast.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecast import (
    ARForecaster,
    HoltLinearForecaster,
    crossing_forecast,
)


def linear_series(slope=0.01, intercept=0.1, n=100, noise=0.0, seed=0):
    gen = np.random.default_rng(seed)
    return intercept + slope * np.arange(n) + gen.normal(0, noise, size=n)


class TestHoltLinear:
    def test_tracks_noiseless_linear_trend(self):
        series = linear_series(slope=0.01, n=200)
        forecaster = HoltLinearForecaster(alpha=0.5, beta=0.3, damping=1.0).fit(series)
        forecast = forecaster.forecast(10)
        expected = series[-1] + 0.01 * np.arange(1, 11)
        assert np.allclose(forecast, expected, atol=1e-3)

    def test_smooths_noisy_trend(self):
        series = linear_series(slope=0.01, n=300, noise=0.05, seed=1)
        forecaster = HoltLinearForecaster().fit(series)
        forecast = forecaster.forecast(50)
        # Forecast continues upward, near the true line.
        true_future = 0.1 + 0.01 * (300 + 49)
        assert forecast[-1] == pytest.approx(true_future, rel=0.25)
        assert forecast[-1] > forecast[0]

    def test_damping_flattens_long_horizon(self):
        series = linear_series(slope=0.01, n=100)
        damped = HoltLinearForecaster(damping=0.9).fit(series).forecast(500)
        undamped = HoltLinearForecaster(damping=1.0).fit(series).forecast(500)
        assert damped[-1] < undamped[-1]
        # Damped forecast converges to a finite asymptote.
        assert abs(damped[-1] - damped[-2]) < 1e-3

    def test_online_update_equivalent_to_fit(self):
        series = linear_series(n=50, noise=0.01, seed=2)
        fitted = HoltLinearForecaster().fit(series)
        online = HoltLinearForecaster()
        online.level_ = float(series[0])
        online.trend_ = float(series[1] - series[0])
        for y in series[1:]:
            online.update(float(y))
        assert online.level_ == pytest.approx(fitted.level_)
        assert online.trend_ == pytest.approx(fitted.trend_)

    def test_update_from_cold_start(self):
        forecaster = HoltLinearForecaster()
        forecaster.update(1.0)
        forecaster.update(1.1)
        assert np.isfinite(forecaster.forecast(5)).all()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HoltLinearForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltLinearForecaster(beta=1.5)
        with pytest.raises(ValueError):
            HoltLinearForecaster(damping=0.0)

    def test_rejects_bad_series(self):
        with pytest.raises(ValueError):
            HoltLinearForecaster().fit([1.0])
        with pytest.raises(ValueError):
            HoltLinearForecaster().fit([1.0, np.nan])

    def test_unfitted_forecast_raises(self):
        with pytest.raises(RuntimeError):
            HoltLinearForecaster().forecast(5)

    @given(
        st.floats(-0.01, 0.01),
        st.floats(0.0, 1.0),
        st.integers(10, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_forecast_is_finite_for_linear_inputs(self, slope, intercept, n):
        series = intercept + slope * np.arange(n)
        forecaster = HoltLinearForecaster().fit(series)
        assert np.isfinite(forecaster.forecast(100)).all()


class TestCrossingStep:
    @staticmethod
    def scan_crossing(forecaster, threshold, horizon):
        """The O(horizon) definition crossing_step must reproduce."""
        over = np.nonzero(forecaster.forecast(horizon) >= threshold)[0]
        return int(over[0] + 1) if over.size else None

    @given(
        st.floats(-0.05, 0.05),
        st.floats(0.0, 1.0),
        st.integers(5, 80),
        st.floats(0.0, 2.0),
        st.sampled_from([0.9, 0.98, 1.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_bisection_matches_linear_scan(
        self, slope, intercept, n, threshold, damping
    ):
        series = intercept + slope * np.arange(n)
        forecaster = HoltLinearForecaster(damping=damping).fit(series)
        horizon = 500
        assert forecaster.crossing_step(threshold, horizon) == self.scan_crossing(
            forecaster, threshold, horizon
        )

    def test_immediate_crossing(self):
        forecaster = HoltLinearForecaster().fit(linear_series(slope=0.05, n=50))
        assert forecaster.crossing_step(-1e9, 100) == 1

    def test_negative_trend_never_crosses(self):
        forecaster = HoltLinearForecaster().fit(linear_series(slope=-0.02, n=100))
        assert forecaster.trend_ < 0
        assert forecaster.crossing_step(1e9, 100) is None

    def test_requires_fit_and_positive_horizon(self):
        with pytest.raises(RuntimeError):
            HoltLinearForecaster().crossing_step(1.0, 10)
        forecaster = HoltLinearForecaster().fit(linear_series(n=10))
        with pytest.raises(ValueError):
            forecaster.crossing_step(1.0, 0)


class TestARForecaster:
    def test_constant_increments_extrapolate(self):
        series = linear_series(slope=0.02, n=60)
        forecast = ARForecaster(order=2).fit(series).forecast(10)
        expected = series[-1] + 0.02 * np.arange(1, 11)
        assert np.allclose(forecast, expected, atol=1e-6)

    def test_noisy_trend_direction(self):
        series = linear_series(slope=0.01, n=200, noise=0.03, seed=3)
        forecast = ARForecaster(order=3).fit(series).forecast(30)
        assert forecast[-1] > series[-1]

    def test_oscillating_increments_learned(self):
        # Increments alternate +1/-1: an AR(1) on differences captures it.
        series = np.cumsum(np.resize([1.0, -1.0], 60))
        forecast = ARForecaster(order=1, ridge=1e-9).fit(series).forecast(4)
        diffs = np.diff(np.concatenate([[series[-1]], forecast]))
        assert diffs[0] * diffs[1] < 0  # keeps alternating

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            ARForecaster(order=3).fit(np.arange(4.0))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ARForecaster(order=0)
        with pytest.raises(ValueError):
            ARForecaster(ridge=-1)

    def test_unfitted_forecast_raises(self):
        with pytest.raises(RuntimeError):
            ARForecaster().forecast(3)

    def test_rejects_nonfinite(self):
        series = np.arange(20.0)
        series[5] = np.inf
        with pytest.raises(ValueError):
            ARForecaster().fit(series)


class TestCrossingForecast:
    def test_already_crossed(self):
        forecaster = HoltLinearForecaster().fit(linear_series())
        result = crossing_forecast(forecaster, last_value=0.5, threshold=0.4)
        assert result.crossed_already
        assert result.crossing_step == 0.0

    def test_crossing_step_matches_trend(self):
        series = linear_series(slope=0.01, intercept=0.0, n=50)  # last = 0.49
        forecaster = HoltLinearForecaster(damping=1.0).fit(series)
        result = crossing_forecast(forecaster, float(series[-1]), threshold=0.59)
        assert not result.crossed_already
        assert result.crossing_step == pytest.approx(10, abs=2)

    def test_flat_series_never_crosses(self):
        series = np.full(30, 0.1)
        forecaster = HoltLinearForecaster().fit(series)
        result = crossing_forecast(forecaster, 0.1, threshold=0.5, horizon=100)
        assert result.crossing_step == np.inf

    def test_works_with_ar_forecaster(self):
        series = linear_series(slope=0.02, intercept=0.0, n=60)
        forecaster = ARForecaster(order=2).fit(series)
        result = crossing_forecast(forecaster, float(series[-1]), threshold=2.0)
        assert np.isfinite(result.crossing_step)
