"""Tests for RUL estimation (rul.py)."""

import numpy as np
import pytest

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.core.ransac import RecursiveRANSAC
from repro.core.rul import RULEstimator, learn_zone_d_threshold


def fleet_scatter(seed=0):
    """Two-population D_a-vs-service-time scatter with known slopes."""
    gen = np.random.default_rng(seed)
    x1 = gen.uniform(0, 500, size=300)
    z1 = 0.0005 * x1 + 0.05 + gen.normal(0, 0.008, size=300)
    x2 = gen.uniform(0, 170, size=200)
    z2 = 0.0016 * x2 + 0.05 + gen.normal(0, 0.008, size=200)
    return np.concatenate([x1, x2]), np.concatenate([z1, z2])


def make_estimator(seed=0):
    estimator = RULEstimator(
        zone_d_threshold=0.30,
        recursive_ransac=RecursiveRANSAC(
            residual_threshold=0.025, min_inliers=80, min_slope=1e-5, seed=seed
        ),
    )
    x, z = fleet_scatter(seed)
    return estimator.fit(x, z)


class TestZoneDThreshold:
    def test_threshold_separates_bc_from_d(self):
        da = np.asarray([0.05, 0.1, 0.15, 0.18, 0.25, 0.3, 0.35])
        labels = np.asarray(
            [ZONE_A, ZONE_BC, ZONE_BC, ZONE_BC, ZONE_D, ZONE_D, ZONE_D], dtype=object
        )
        t = learn_zone_d_threshold(da, labels)
        assert 0.18 < t <= 0.25

    def test_zone_a_samples_are_ignored(self):
        da = np.asarray([0.9, 0.1, 0.3])  # absurd A value must not matter
        labels = np.asarray([ZONE_A, ZONE_BC, ZONE_D], dtype=object)
        t = learn_zone_d_threshold(da, labels)
        assert 0.1 < t <= 0.3

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            learn_zone_d_threshold(np.asarray([0.1]), np.asarray([ZONE_BC], dtype=object))


class TestRULEstimator:
    def test_fit_discovers_two_models(self):
        estimator = make_estimator()
        assert estimator.n_models == 2

    def test_slow_pump_assigned_to_shallow_model(self):
        estimator = make_estimator()
        xs = np.linspace(0, 200, 30)
        zs = 0.0005 * xs + 0.05
        idx = estimator.select_model(xs, zs)
        assert estimator.models_[idx].slope == pytest.approx(0.0005, rel=0.3)

    def test_fast_pump_assigned_to_steep_model(self):
        estimator = make_estimator()
        xs = np.linspace(0, 100, 30)
        zs = 0.0016 * xs + 0.05
        idx = estimator.select_model(xs, zs)
        assert estimator.models_[idx].slope == pytest.approx(0.0016, rel=0.3)

    def test_predict_matches_analytic_crossing(self):
        estimator = make_estimator()
        xs = np.linspace(0, 100, 20)
        zs = 0.0016 * xs + 0.05  # crosses 0.30 at x = 156.25
        prediction = estimator.predict(xs, zs)
        assert prediction.crossing_service_days == pytest.approx(156.25, rel=0.15)
        assert prediction.rul_days == pytest.approx(
            prediction.crossing_service_days - 100.0, abs=1e-9
        )

    def test_negative_rul_for_pump_past_threshold(self):
        """The paper's pumps 2 and 11: already past the hazard boundary."""
        estimator = make_estimator()
        xs = np.linspace(100, 300, 20)
        zs = 0.0016 * xs + 0.05  # at x=300, D_a = 0.53 >> 0.30
        prediction = estimator.predict(xs, zs)
        assert prediction.rul_days < 0

    def test_predict_is_robust_to_outlier_spikes(self):
        estimator = make_estimator()
        xs = np.linspace(0, 100, 40)
        zs = 0.0016 * xs + 0.05
        zs_spiked = zs.copy()
        zs_spiked[::10] += 0.5  # maintenance spikes
        clean = estimator.predict(xs, zs)
        spiked = estimator.predict(xs, zs_spiked)
        assert spiked.crossing_service_days == pytest.approx(
            clean.crossing_service_days, rel=0.2
        )

    def test_predict_fleet(self):
        estimator = make_estimator()
        histories = {
            "slow": (np.linspace(0, 200, 10), 0.0005 * np.linspace(0, 200, 10) + 0.05),
            "fast": (np.linspace(0, 100, 10), 0.0016 * np.linspace(0, 100, 10) + 0.05),
        }
        predictions = estimator.predict_fleet(histories)
        assert set(predictions) == {"slow", "fast"}
        assert predictions["slow"].rul_days > predictions["fast"].rul_days

    def test_predict_without_fit_raises(self):
        estimator = RULEstimator(zone_d_threshold=0.3)
        with pytest.raises(RuntimeError):
            estimator.predict(np.asarray([1.0]), np.asarray([0.1]))

    def test_empty_history_raises(self):
        estimator = make_estimator()
        with pytest.raises(ValueError):
            estimator.predict(np.empty(0), np.empty(0))

    def test_misaligned_history_raises(self):
        estimator = make_estimator()
        with pytest.raises(ValueError):
            estimator.predict(np.ones(3), np.ones(4))

    def test_rejects_non_finite_threshold(self):
        with pytest.raises(ValueError):
            RULEstimator(zone_d_threshold=float("nan"))

    def test_select_model_without_models(self):
        estimator = RULEstimator(zone_d_threshold=0.3)
        assert estimator.select_model(np.asarray([1.0]), np.asarray([0.1])) == -1
