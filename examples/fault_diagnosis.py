"""Fault diagnosis and maintenance scheduling on a mixed-fault fleet.

The paper's fab experts read spectra to decide pump condition; this
example automates that reading with the explainable spectral diagnoser,
then turns RUL predictions into a capacity-constrained replacement
schedule — the paper's ultimate objective ("optimize the replacement
scheduling over the equipments").

1. simulate pumps carrying different mechanical faults;
2. diagnose each from its harmonic peak feature (imbalance,
   misalignment, looseness, bearing defect);
3. plan the crew's next weeks from a set of RUL predictions.

Usage::

    python examples/fault_diagnosis.py
"""

import numpy as np

from repro.analysis.scheduling import MaintenanceScheduler
from repro.core.diagnosis import SpectralDiagnoser
from repro.core.features import psd_feature, psd_frequencies
from repro.core.peaks import extract_harmonic_peaks
from repro.core.rul import RULPrediction
from repro.simulation.faults import FaultInjector, FaultSpec, FaultType

FS = 4000.0
K = 1024


def averaged_peaks(injector, fault, freqs, rng, n=5):
    psd = np.mean(
        [psd_feature(injector.synthesize(fault, K, FS, rng)) for _ in range(n)],
        axis=0,
    )
    return extract_harmonic_peaks(psd, freqs)


def diagnose_fleet() -> None:
    print("=== 1. Spectral fault diagnosis ===")
    injector = FaultInjector()
    freqs = psd_frequencies(K, FS)
    rng = np.random.default_rng(0)

    healthy = averaged_peaks(injector, FaultSpec(FaultType.NONE), freqs, rng)
    diagnoser = SpectralDiagnoser(injector.profile.rotation_hz)
    diagnoser.fit_baseline(healthy)

    fleet = {
        "pump-00": FaultSpec(FaultType.NONE),
        "pump-01": FaultSpec(FaultType.IMBALANCE, 0.9),
        "pump-02": FaultSpec(FaultType.MISALIGNMENT, 0.8),
        "pump-03": FaultSpec(FaultType.LOOSENESS, 0.9),
        "pump-04": FaultSpec(FaultType.BEARING_DEFECT, 0.8),
    }
    print(f"{'pump':>8}  {'injected':>15}  {'diagnosed':>15}  strongest evidence")
    for name, fault in fleet.items():
        peaks = averaged_peaks(injector, fault, freqs, rng)
        diagnosis = diagnoser.diagnose(peaks)
        if diagnosis.scores:
            top = max(diagnosis.scores, key=diagnosis.scores.get)
            evidence = f"{top}={diagnosis.scores[top]:.1f}"
        else:
            evidence = "-"
        print(f"{name:>8}  {fault.kind.value:>15}  {diagnosis.label:>15}  {evidence}")


def plan_maintenance() -> None:
    print("\n=== 2. Replacement scheduling from RUL predictions ===")

    def prediction(days):
        return RULPrediction(
            model_index=0, slope=0.001, intercept=0.05,
            current_service_days=100.0,
            crossing_service_days=100.0 + days, rul_days=days,
        )

    predictions = {
        0: prediction(-4.0),    # overdue
        1: prediction(9.0),
        2: prediction(12.0),
        3: prediction(24.0),
        4: prediction(26.0),
        5: prediction(30.0),
        6: prediction(200.0),   # healthy, outside this plan
    }
    scheduler = MaintenanceScheduler(
        period_days=7.0, capacity_per_period=2, safety_margin_days=7.0
    )
    plan = scheduler.plan(predictions, horizon_periods=8)
    print(f"crew capacity: 2 replacements/week, safety margin 7 days")
    for period, items in sorted(plan.by_period().items()):
        pumps = ", ".join(
            f"pump {s.pump_id} (RUL {s.predicted_rul_days:.0f} d)" for s in items
        )
        print(f"  week {period}: {pumps}")
    unscheduled = [p for p in predictions if plan.period_of(p) is None]
    print(f"  not in this plan: pumps {unscheduled}")
    print(
        f"expected wasted RUL: {plan.expected_wasted_days:.0f} days "
        f"(${plan.expected_wasted_usd:,.0f})"
    )


def main() -> None:
    diagnose_fleet()
    plan_maintenance()


if __name__ == "__main__":
    main()
