"""Quickstart: simulate a small pump fleet and analyze it end to end.

Runs the complete paper workflow on synthetic data in under a minute:

1. simulate a fleet of vacuum pumps with MEMS vibration sensors;
2. collect expert labels for a subset of measurements;
3. run the layered analysis pipeline (Fig. 7): transformation,
   preprocessing, harmonic-peak features, zone classification, recursive
   RANSAC lifetime models and RUL prediction;
4. print the fab manager's view: per-pump zone, lifetime model and RUL.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import AnalysisPipeline, PipelineConfig
from repro.simulation import FleetConfig, FleetSimulator
from repro.viz.ascii import ascii_line_plot


def main() -> None:
    print("=== 1. Simulating the fleet ===")
    config = FleetConfig(
        num_pumps=6,
        duration_days=80,
        report_interval_days=0.5,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        seed=11,
    )
    dataset = FleetSimulator(config).run()
    print(f"pumps:         {config.num_pumps}")
    print(f"measurements:  {len(dataset.measurements)}")
    zone_counts = {z: int((dataset.true_zone == z).sum()) for z in ("A", "BC", "D")}
    print(f"true zones:    {zone_counts}")

    print("\n=== 2. Expert labeling ===")
    _, labels = dataset.expert_labels({"A": 40, "BC": 40, "D": 25})
    print(f"valid labels:  {len(labels)}")

    print("\n=== 3. Running the analysis pipeline ===")
    pipeline = AnalysisPipeline(
        PipelineConfig(
            moving_average_window=4,
            ransac_min_inliers=80,
            ransac_residual_threshold=0.05,
        )
    )
    pumps, service, samples = dataset.measurement_arrays()
    result = pipeline.run(pumps, service, samples, labels)
    print(f"valid measurements: {result.valid_mask.sum()} / {len(result.valid_mask)}")
    print(f"zone thresholds:    {np.round(result.zone_thresholds, 3)}")
    print(f"Zone D boundary:    {result.zone_d_threshold:.3f}  (paper: 0.21)")
    print(f"lifetime models:    {len(result.lifetime_models)}")
    for i, model in enumerate(result.lifetime_models):
        print(
            f"  model {i + 1}: D_a = {model.slope:.2e} * days + {model.intercept:.3f}"
            f"  ({model.n_inliers} supporting measurements)"
        )

    print("\n=== 4. Fab manager view ===")
    print(f"{'pump':>4}  {'true zone':>9}  {'pred zone':>9}  {'model':>5}  {'RUL (days)':>10}")
    for pump in range(config.num_pumps):
        member = np.nonzero((pumps == pump) & result.valid_mask)[0]
        latest = member[np.argmax(service[member])]
        prediction = result.rul.get(pump)
        rul_text = f"{prediction.rul_days:10.0f}" if prediction else "         -"
        model_text = f"{prediction.model_index + 1:>5}" if prediction else "    -"
        print(
            f"{pump:>4}  {dataset.true_zone[latest]:>9}  {result.zones[latest]:>9}"
            f"  {model_text}  {rul_text}"
        )

    print("\n=== 5. One pump's degradation trajectory ===")
    pump = 0
    member = np.nonzero((pumps == pump) & result.valid_mask)[0]
    order = member[np.argsort(service[member])]
    print(
        ascii_line_plot(
            service[order],
            {"D_a": result.da[order]},
            title=f"Pump {pump}: peak harmonic distance over service time",
            x_label="service days",
            y_label="D_a",
            width=64,
            height=12,
        )
    )


if __name__ == "__main__":
    main()
