"""Fab fleet monitoring: the full database-backed engine with rolling updates.

Mirrors the production deployment of Sec. V: measurements, labels, FICS
temperature and maintenance events land in the (SQLite) sensor/factory
databases; the analysis engine re-runs on a rolling analysis period and
produces the operator report each refresh — including the Table IV-style
wasted-RUL cost accounting.

Usage::

    python examples/fab_fleet_monitoring.py
"""

from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
from repro.core.pipeline import PipelineConfig
from repro.simulation import FleetConfig, FleetSimulator
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase


def main() -> None:
    print("=== Loading three months of fleet data into the databases ===")
    config = FleetConfig(
        num_pumps=8,
        duration_days=90,
        report_interval_days=0.5,
        pm_interval_days=240.0,
        unstable_sensor_fraction=0.25,
        max_initial_age_fraction=0.9,
        seed=11,
    )
    dataset = FleetSimulator(config).run()
    database = VibrationDatabase()
    dataset.to_database(database)
    label_records, _ = dataset.expert_labels({"A": 40, "BC": 40, "D": 15})
    database.labels.add_many(label_records)
    print(f"measurements stored: {database.measurements.count()}")
    print(f"labels stored:       {database.labels.count()} "
          f"({database.labels.count(only_valid=True)} valid)")
    print(f"maintenance events:  {len(dataset.events)}")

    # The engine analyzes a rolling window that refreshes periodically
    # (the paper uses hourly refreshes; we step 30 simulated days).
    api = DataRetrievalAPI(database, AnalysisPeriod(0.0, 30.0))
    engine = VibrationAnalysisEngine(
        api,
        EngineConfig(
            pipeline=PipelineConfig(
                moving_average_window=4,
                ransac_min_inliers=60,
                ransac_residual_threshold=0.05,
            )
        ),
    )

    for refresh in range(3):
        period = api.period
        print(f"\n=== Analysis refresh {refresh + 1}: days "
              f"[{period.start_day:.0f}, {period.end_day:.0f}) ===")
        try:
            report = engine.run()
        except ValueError as exc:
            print(f"skipped: {exc}")
            api.advance(30.0)
            continue
        for line in report.summary_lines():
            print(line)
        print(f"lifetime models: {len(report.lifetime_models)}")
        wasted = report.wasted_rul
        print(
            f"maintenance cost in window: ${wasted['total_usd']:,.0f} "
            f"({wasted['pm_wasted_days']:.0f} wasted PM days, "
            f"{wasted['bm_overrun_days']:.0f} hazard-overrun days)"
        )
        api.advance(30.0)

    database.close()
    print("\nDone: the final refresh covers the full quarter.")


if __name__ == "__main__":
    main()
