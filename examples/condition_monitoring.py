"""Condition monitoring beyond D_a: classical indicators and forecasting.

Shows the library's extension surface on a single degrading pump:

1. trend the classical condition indicators (RMS, crest factor, kurtosis,
   spectral centroid/entropy, high-frequency energy) over the pump's
   life alongside the paper's D_a; and
2. forecast the pump's own D_a trajectory with Holt linear smoothing
   (the paper's future-work "sequential model") and read off a
   per-pump RUL, next to the population-model estimate.

Usage::

    python examples/condition_monitoring.py
"""

import numpy as np

from repro.core import (
    HoltLinearForecaster,
    condition_indicators,
    crossing_forecast,
)
from repro.core.classify import PeakHarmonicFeature
from repro.core.features import psd_feature, psd_frequencies
from repro.simulation.degradation import MODEL_II, DegradationProcess
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer
from repro.viz.ascii import ascii_line_plot

FS = 4000.0
K = 1024
MEASUREMENTS = 120


def main() -> None:
    rng = np.random.default_rng(3)
    process = DegradationProcess(MODEL_II, rng)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(4))
    freqs = psd_frequencies(K, FS)

    print(f"Simulating one Model II pump (true life {process.life_days:.0f} days), "
          f"{MEASUREMENTS} measurements...")
    days = np.linspace(0, 0.8 * process.life_days, MEASUREMENTS)
    blocks = []
    for day in days:
        wear = process.wear_at(float(day))
        true_block = synth.synthesize(wear, K, FS, rng)
        blocks.append(sensor.measure_g(true_block, float(day), FS))

    # Classical indicators over the pump's life.
    bundles = [condition_indicators(block, FS) for block in blocks]
    print("\n=== Condition indicator trends (first -> last quarter mean) ===")
    quarter = MEASUREMENTS // 4
    for key in bundles[0].as_dict():
        early = np.mean([b.as_dict()[key] for b in bundles[:quarter]])
        late = np.mean([b.as_dict()[key] for b in bundles[-quarter:]])
        direction = "^" if late > early else "v"
        print(f"  {key:<22} {early:>10.4f} -> {late:>10.4f}  {direction}")

    # D_a series from a healthy exemplar (the first 10 measurements).
    psds = np.stack([psd_feature(b) for b in blocks])
    feature = PeakHarmonicFeature().fit(psds[:10], freqs)
    da = feature.score_many(psds, freqs)
    print("\n=== D_a trajectory ===")
    print(
        ascii_line_plot(
            days,
            {"D_a": da},
            title="Peak harmonic distance over service time",
            x_label="service days",
            y_label="D_a",
            width=64,
            height=10,
        )
    )

    # Forecast the pump's own trajectory (future-work sequence model).
    threshold = 0.35
    forecaster = HoltLinearForecaster(damping=1.0).fit(da)
    result = crossing_forecast(forecaster, float(da[-1]), threshold, horizon=5000)
    step_days = float(np.median(np.diff(days)))
    print(f"\n=== Per-pump RUL forecast (Holt linear smoothing) ===")
    print(f"hazard threshold on D_a: {threshold}")
    if result.crossed_already:
        print("the pump is already past the hazard threshold")
    elif np.isfinite(result.crossing_step):
        rul = result.crossing_step * step_days
        true_rul = process.life_days - days[-1]
        print(f"forecast RUL: {rul:.0f} days   (ground truth: {true_rul:.0f} days)")
    else:
        print("trajectory never reaches the threshold inside the horizon")


if __name__ == "__main__":
    main()
