"""Streaming monitor: per-measurement tracking with debounced alerts.

The batch engine refreshes on an analysis period; this example shows the
incremental path — each measurement updates the pump's smoothed D_a,
zone, debounced hazard alert and a per-pump RUL forecast in O(1), as a
real gateway-attached monitor would.  The stream covers one pump's whole
life including a replacement, so you can watch the alert raise, the
replacement clear it, and the second life begin.

Usage::

    python examples/streaming_monitor.py
"""

import numpy as np

from repro.analysis.online import OnlinePumpTracker
from repro.core.classify import PeakHarmonicFeature
from repro.core.features import psd_feature, psd_frequencies
from repro.core.severity import assess_severity
from repro.simulation.degradation import MODEL_II, DegradationProcess
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer

FS = 4000.0
K = 1024


def main() -> None:
    rng = np.random.default_rng(8)
    synth = VibrationSynthesizer()
    freqs = psd_frequencies(K, FS)

    # Bootstrap: a healthy exemplar + thresholds from commissioning data.
    sensor = MEMSSensor(rng=np.random.default_rng(9))
    reference = np.stack(
        [
            psd_feature(sensor.measure_g(synth.synthesize(0.05, K, FS, rng), 0.0, FS))
            for _ in range(10)
        ]
    )
    feature = PeakHarmonicFeature().fit(reference, freqs)
    tracker = OnlinePumpTracker(
        feature=feature,
        zone_thresholds=np.asarray([0.18, 0.38]),
        measurement_interval_days=1.0,
        smoothing_window=5,
        debounce=3,
    )
    # ISO boundaries are machine-class specific; this pump model is a
    # strong vibrator, so its class sits at higher velocity limits.
    iso_boundaries = (10.0, 18.0, 28.0)

    # Stream: a fast-ageing pump runs past failure, is replaced, restarts.
    process = DegradationProcess(MODEL_II, rng)
    life = process.life_days
    print(f"streaming a Model II pump (true life {life:.0f} days), daily measurements")
    print(f"{'day':>5} {'wear':>6} {'D_a':>7} {'zone':>5} {'ISO':>4} "
          f"{'RUL fc':>7} {'alert':>6}")

    service = 0.0
    replaced = False
    for day in range(int(1.25 * life)):
        wear = process.wear_at(service)
        if wear >= 1.05 and not replaced:
            print(f"{day:>5}  -- pump replaced (wear {wear:.2f}) --")
            process = DegradationProcess(MODEL_II, rng)
            sensor = MEMSSensor(rng=np.random.default_rng(10))
            service = 0.0
            replaced = True
            wear = process.wear_at(service)
        block = sensor.measure_g(synth.synthesize(wear, K, FS, rng), day, FS)
        update = tracker.consume(psd_feature(block), freqs)
        iso = assess_severity(block, FS, boundaries_mm_s=iso_boundaries).iso_zone
        if day % 10 == 0 or update.alert != tracker.alert_active or update.zone == "D":
            rul_text = (
                f"{update.rul_days:>7.0f}" if np.isfinite(update.rul_days) else "    inf"
            )
            print(
                f"{day:>5} {wear:>6.2f} {update.da:>7.3f} {update.zone:>5} "
                f"{iso:>4} {rul_text} {'ALERT' if update.alert else '':>6}"
            )
        service += 1.0

    print("\nfinal state:", "ALERT" if tracker.alert_active else "nominal",
          f"after {tracker.n_measurements} measurements")


if __name__ == "__main__":
    main()
