"""Bring your own data: CSV accelerometer logs through the full pipeline.

Everything else in ``examples/`` runs on the built-in simulator; this one
shows the adoption path for *real* sensor data:

1. accelerometer logs arrive as plain ``x,y,z`` CSV files (one per
   measurement) plus the metadata you know about them;
2. they are imported into the measurement store;
3. the analysis pipeline runs on them unchanged;
4. the corpus is exported as a portable NPZ for sharing.

For the demo the "external" CSVs are synthesized first — swap the
generation block for your own files.

Usage::

    python examples/external_data.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.classify import PeakHarmonicFeature
from repro.core.features import psd_feature, psd_frequencies
from repro.core.severity import assess_severity
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer
from repro.storage.traces import (
    export_csv_measurement,
    export_npz,
    import_csv_measurement,
)
from repro.storage.records import Measurement

FS = 4000.0
K = 1024


def fabricate_external_logs(directory: Path) -> list[dict]:
    """Stand-in for your data acquisition: writes x,y,z CSVs to disk."""
    rng = np.random.default_rng(17)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(18))
    manifest = []
    for i, wear in enumerate(np.linspace(0.05, 1.0, 12)):
        block = sensor.measure_g(synth.synthesize(wear, K, FS, rng), float(i), FS)
        record = Measurement(0, i, float(i), float(i), block, FS)
        path = directory / f"measurement_{i:03d}.csv"
        export_csv_measurement(record, path)
        manifest.append({"path": path, "day": float(i)})
    return manifest


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        print("=== 1. 'External' CSV logs on disk ===")
        manifest = fabricate_external_logs(directory)
        print(f"{len(manifest)} CSV files, e.g. {manifest[0]['path'].name}")

        print("\n=== 2. Import into Measurement records ===")
        measurements = [
            import_csv_measurement(
                item["path"],
                pump_id=0,
                measurement_id=i,
                timestamp_day=item["day"],
                service_day=item["day"] * 15.0,  # your CMMS knows this
                sampling_rate_hz=FS,
            )
            for i, item in enumerate(manifest)
        ]
        print(f"imported {len(measurements)} measurements of "
              f"{measurements[0].num_samples} samples each")

        print("\n=== 3. Analyze ===")
        freqs = psd_frequencies(K, FS)
        psds = np.stack([psd_feature(m.samples) for m in measurements])
        feature = PeakHarmonicFeature().fit(psds[:3], freqs)
        da = feature.score_many(psds, freqs)
        print(f"{'day':>5} {'service':>8} {'D_a':>7} {'velocity mm/s':>13}")
        for m, value in zip(measurements, da):
            severity = assess_severity(m.samples, FS, boundaries_mm_s=(10, 18, 28))
            print(
                f"{m.timestamp_day:>5.0f} {m.service_day:>8.0f} {value:>7.3f}"
                f" {severity.velocity_rms_mm_s:>10.1f} ({severity.iso_zone})"
            )
        trend = np.polyfit([m.service_day for m in measurements], da, 1)[0]
        print(f"degradation rate: {trend:.2e} D_a per service day")

        print("\n=== 4. Export the corpus ===")
        out = export_npz(measurements, directory / "corpus.npz")
        print(f"portable corpus written: {out.name} "
              f"({out.stat().st_size / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
