"""Sensor network planning: the Fig. 5 tradeoff and reliable collection.

Two planning questions a deployment engineer answers before instrumenting
a fab, both straight from Sec. II of the paper:

1. **How often can each mote report?**  Given a target node lifetime and a
   sampling frequency, the battery dictates a lower bound on the report
   period (Fig. 5).  "Data is expensive" — the affordable measurement
   count over the node's life is startlingly small.
2. **Will the measurements survive the radio?**  A 6 KB measurement is 120
   packets; losing one loses the block.  Flush's NACK recovery keeps the
   recovery rate at 100% where best-effort transport collapses.

Usage::

    python examples/sensor_network_planning.py
"""

import numpy as np

from repro.sensornet.energy import EnergyModel
from repro.sensornet.flush import best_effort_transfer, flush_transfer
from repro.sensornet.packets import fragment_measurement
from repro.sensornet.radio import LossyLink
from repro.viz.ascii import ascii_line_plot


def energy_tradeoff() -> None:
    print("=== Fig. 5: report period lower bound vs sampling frequency ===")
    model = EnergyModel()
    rates = np.logspace(np.log10(150), np.log10(22_000), 24)
    series = {}
    for years in (1, 2, 3, 4):
        series[f"{years} yr"] = model.tradeoff_curve(rates, years)
    print(
        ascii_line_plot(
            np.log10(rates),
            series,
            title="Report period lower bound (hours) vs log10 sampling rate (Hz)",
            x_label="log10 fs",
            y_label="hours",
            width=64,
            height=14,
        )
    )
    print("\nPaper's worked example (150 Hz):")
    for years in (2, 3):
        bound_h = model.report_period_lower_bound_s(150.0, years) / 3600.0
        budget = model.measurements_in_lifetime(150.0, years)
        print(
            f"  target {years} yr: min report period {bound_h:.1f} h "
            f"-> {budget:,.0f} measurements over the node's life"
        )


def transport_reliability() -> None:
    print("\n=== Flush vs best-effort under packet loss ===")
    gen = np.random.default_rng(0)
    print(f"{'loss':>6}  {'flush ok':>8}  {'best-effort ok':>14}  {'tx overhead':>11}")
    for loss in (0.01, 0.05, 0.1, 0.2, 0.3):
        flush_ok = 0
        naive_ok = 0
        overhead = []
        trials = 20
        for trial in range(trials):
            counts = gen.integers(-2000, 2000, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            stats, _ = flush_transfer(
                packets, LossyLink(loss, seed=trial), max_rounds=50
            )
            flush_ok += stats.success
            overhead.append(stats.data_transmissions / len(packets))
            naive, _ = best_effort_transfer(packets, LossyLink(loss, seed=1000 + trial))
            naive_ok += naive.success
        print(
            f"{loss:>6.0%}  {flush_ok / trials:>8.0%}  {naive_ok / trials:>14.0%}"
            f"  {np.mean(overhead):>10.2f}x"
        )
    print("\nLosing any of the 120 packets loses the measurement, so")
    print("best-effort recovery collapses as (1 - loss)^120 while Flush")
    print("pays only a ~1/(1-loss) transmission overhead.")


def main() -> None:
    energy_tradeoff()
    transport_reliability()


if __name__ == "__main__":
    main()
