"""Replacement cost analysis: what RUL-driven maintenance is worth.

Reproduces the economic argument of Table IV and the introduction: a fixed
six-month replacement policy throws away most of a long-lived pump's
useful life, while running pumps blind risks expensive breakdowns.  The
script prices both policies over a synthetic population mixing the paper's
two lifetime models and reports savings, lifetime prolongation, and
breakdown exposure as the prediction error varies.

Usage::

    python examples/replacement_cost_analysis.py
"""

import numpy as np

from repro.analysis.cost import CostModel
from repro.simulation.degradation import MODEL_I, MODEL_II


def sample_fleet_lives(n: int, model_ii_fraction: float, rng: np.random.Generator):
    lives = np.empty(n)
    populations = np.empty(n, dtype=object)
    for i in range(n):
        spec = MODEL_II if rng.random() < model_ii_fraction else MODEL_I
        lives[i] = spec.sample_life_days(rng)
        populations[i] = spec.name
    return lives, populations


def main() -> None:
    rng = np.random.default_rng(7)
    model = CostModel()
    lives, populations = sample_fleet_lives(2000, model_ii_fraction=1 / 3, rng=rng)
    pm_interval = 180.0  # the paper's conservative six-month policy

    print("=== Fleet composition ===")
    for name in ("Model I", "Model II"):
        member = populations == name
        print(
            f"{name}: {member.sum():>4} pumps, mean true life "
            f"{lives[member].mean():.0f} days"
        )

    print("\n=== Policy comparison vs prediction quality ===")
    header = (
        f"{'pred error (d)':>14}  {'savings':>8}  {'lifetime x':>10}  "
        f"{'base BM%':>8}  {'pred BM%':>8}"
    )
    print(header)
    for error_days in (0, 15, 30, 60, 120):
        predictions = lives + rng.normal(0, error_days, size=lives.size)
        summary = model.compare_policies(
            lives, predictions, pm_interval_days=pm_interval, safety_margin_days=21.0
        )
        print(
            f"{error_days:>14}  {summary.savings_fraction:>8.1%}"
            f"  {summary.lifetime_factor:>10.2f}"
            f"  {summary.baseline_breakdown_rate:>8.1%}"
            f"  {summary.predictive_breakdown_rate:>8.1%}"
        )

    print("\n=== Per-population savings (accurate predictions, 30 d error) ===")
    predictions = lives + rng.normal(0, 30.0, size=lives.size)
    for name in ("Model I", "Model II"):
        member = populations == name
        summary = model.compare_policies(
            lives[member], predictions[member], pm_interval_days=pm_interval,
            safety_margin_days=21.0,
        )
        print(
            f"{name}: savings {summary.savings_fraction:.1%}, "
            f"lifetime x{summary.lifetime_factor:.2f} "
            f"(paper reports 22% for Model I, 7.4% for Model II, "
            f"lifetime x1.2 fleet-wide)"
        )

    print("\n=== Table IV-style wasted-RUL accounting ===")
    from repro.storage.records import PM, MaintenanceEvent

    events = [
        MaintenanceEvent(4, 50.0, PM, 180.0, 390.0),
        MaintenanceEvent(5, 55.0, PM, 180.0, 310.0),
        MaintenanceEvent(8, 60.0, PM, 180.0, 280.0),
    ]
    wasted = model.wasted_rul_value(events)
    print(
        f"pumps 4, 5, 8 replaced on plan: {wasted['pm_wasted_days']:.0f} wasted "
        f"days = ${wasted['pm_wasted_usd']:,.0f} (paper: $98,000)"
    )


if __name__ == "__main__":
    main()
