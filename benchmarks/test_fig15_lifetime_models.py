"""Fig. 15: lifetime models discovered by recursive RANSAC over the fleet.

The paper pools every measurement's (service time, D_a) point across the
12-pump fleet and lets recursive RANSAC discover the linear lifetime
models; it finds exactly two — a fast-ageing Model II (~6-month life) and
a slow-ageing Model I (~18-month life).  This benchmark regenerates the
scatter, the discovered lines and the Zone D threshold crossing, and
verifies the recovered slopes against the simulation's ground truth.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.core.ransac import RecursiveRANSAC
from repro.simulation.degradation import WEAR_AT_FAILURE
from repro.viz.ascii import ascii_line_plot
from repro.viz.export import write_csv


def run_experiment() -> dict:
    return rul_fleet_analysis()


def test_fig15_lifetime_models(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    dataset, result = out["dataset"], out["result"]
    service, pumps = out["service"], out["pumps"]

    models = result.lifetime_models
    print(f"\nFig. 15: {len(models)} lifetime models over "
          f"{int(result.valid_mask.sum())} valid measurements")
    rows = []
    for i, model in enumerate(models):
        crossing = model.crossing_time(result.zone_d_threshold)
        print(
            f"  model {i + 1}: D_a = {model.slope:.3e} * days + {model.intercept:.3f}"
            f"  support={model.n_inliers}  reaches Zone D at ~{crossing:.0f} days"
        )
        rows.append([i + 1, f"{model.slope:.6e}", f"{model.intercept:.5f}",
                     model.n_inliers, f"{crossing:.1f}"])
    write_csv(
        ARTIFACTS_DIR / "fig15_lifetime_models.csv",
        ["model", "slope_per_day", "intercept", "support", "zone_d_crossing_days"],
        rows,
    )

    valid = result.valid_mask
    order = np.argsort(service[valid])
    sub = order[:: max(1, order.size // 400)]
    print(
        ascii_line_plot(
            service[valid][sub],
            {"D_a": result.da[valid][sub]},
            title="Fleet scatter: D_a vs service time (subsampled)",
            x_label="service days",
            y_label="D_a",
            height=12,
        )
    )
    write_csv(
        ARTIFACTS_DIR / "fig15_scatter.csv",
        ["service_days", "da", "pump"],
        [
            [f"{service[i]:.3f}", f"{result.da[i]:.5f}", int(pumps[i])]
            for i in np.nonzero(valid)[0]
        ],
    )

    # The pipeline's models come from the batched RANSAC engine; the
    # scalar reference engine on the same pooled scatter must reproduce
    # them bit for bit (same RNG-stream contract, same tie-breaks).
    reference_engine = RecursiveRANSAC(
        residual_threshold=0.05,
        min_inliers=max(150, len(dataset.measurements) // 20),
        seed=0,
        engine="reference",
    )
    replayed = reference_engine.fit(service[valid], result.da[valid])
    assert len(replayed) == len(models)
    for a, b in zip(models, replayed):
        assert a.slope == b.slope and a.intercept == b.intercept
        assert np.array_equal(a.inlier_indices, b.inlier_indices)

    # The paper finds exactly two models; a third duplicate population is
    # tolerated but the dominant two must be distinct.
    assert 2 <= len(models) <= 3
    slopes = sorted(m.slope for m in models[:2])
    assert slopes[1] > 1.5 * slopes[0], "the two populations must differ in rate"

    # Recovered time-to-hazard per model matches the planted populations:
    # Model II pumps live ~180 days, Model I ~540, and the Zone D boundary
    # sits at 85% of life, so crossings near ~150 and ~460 days.
    crossings = sorted(
        m.crossing_time(result.zone_d_threshold) for m in models[:2]
    )
    assert 60 < crossings[0] < 320, f"fast population crossing {crossings[0]:.0f}"
    assert 280 < crossings[1] < 900, f"slow population crossing {crossings[1]:.0f}"

    # All discovered slopes are positive (monotone degradation).
    assert all(m.slope > 0 for m in models)
