"""Performance benchmark: the vectorized RUL model layer.

Two gated speedups, both measured against the scalar reference paths
that remain in the tree as implementations of record:

* **RANSAC fit** — the batched :meth:`RANSACLineFitter.fit` (vectorized
  trial evaluation plus the fused C consensus kernel when it compiles)
  against :meth:`~RANSACLineFitter.fit_reference`, the per-trial scalar
  loop, at fleet scale (N = 5000 points, 2000 trials).  Gate: **≥ 5x**.
  Bit-identity of the two fits is asserted before timing; the gate is
  skipped on hosts where the fused kernel cannot compile, because the
  numpy tiled fallback alone does not clear 5x on a single core.
* **Walk-forward backtest** — the incremental :func:`backtest_rul`
  (prefix windows, precomputed per-pump groups, batched fits) against
  :func:`backtest_rul_reference` (per-day rescan, scalar-engine fits)
  over a 24-pump fleet, identically configured engines so both runs
  perform the same model fits.  Gate: **≥ 3x** end-to-end.

The tiled KDE ``pdf`` timing is recorded as an informational entry (no
gate): its tiling bounds memory, it does not change the flop count.

Set ``REPRO_PERF_RELAXED=1`` (the PR-smoke CI job does) to widen the
gates for noisy shared runners; main branch CI runs the full gates.

Every run writes ``BENCH_5.json`` to the repo root — workload shapes,
raw timings, speedups and gate status — so CI can archive the numbers
as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.backtest import backtest_rul, backtest_rul_reference
from repro.core import _native
from repro.core.kde import GaussianKDE1D
from repro.core.ransac import RANSACLineFitter, RecursiveRANSAC

pytestmark = pytest.mark.perf

FIT_POINTS = 5000
FIT_TRIALS = 2000
FIT_ROUNDS = 5

BACKTEST_PUMPS = 24
BACKTEST_DAYS = 200.0
BACKTEST_REFRESH = 5.0
BACKTEST_ROUNDS = 3

KDE_SAMPLES = 4000
KDE_GRID = 2000

RELAXED = os.environ.get("REPRO_PERF_RELAXED", "") not in ("", "0")

#: Reference wall-clock divided by vectorized wall-clock, min over rounds.
GATES = {
    "ransac_fit_speedup": 2.0 if RELAXED else 5.0,
    "backtest_speedup": 1.5 if RELAXED else 3.0,
}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"

_REPORT: dict = {
    "benchmark": "model_layer",
    "relaxed_gates": RELAXED,
    "gates": dict(GATES),
    "native_kernel": _native.available(),
    "workload": {
        "fit": {
            "points": FIT_POINTS,
            "trials": FIT_TRIALS,
            "rounds": FIT_ROUNDS,
        },
        "backtest": {
            "pumps": BACKTEST_PUMPS,
            "days": BACKTEST_DAYS,
            "refresh_every_days": BACKTEST_REFRESH,
            "rounds": BACKTEST_ROUNDS,
        },
        "kde": {"samples": KDE_SAMPLES, "grid": KDE_GRID},
    },
}

_TIMINGS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Persist the machine-readable benchmark record at module teardown."""
    yield
    BENCH_PATH.write_text(json.dumps(_REPORT, indent=2, sort_keys=True) + "\n")


def fleet_scatter(seed=0, n=FIT_POINTS):
    """Pooled fleet (service time, D_a) scatter with one dominant trend."""
    gen = np.random.default_rng(seed)
    x = gen.uniform(0, 100, n)
    z = 0.05 * x + gen.normal(0, 0.3, n)
    return x, z


def make_fitter():
    return RANSACLineFitter(
        seed=0, max_trials=FIT_TRIALS, min_slope=1e-12, residual_threshold=0.3
    )


def fleet_history(seed=0, n_pumps=BACKTEST_PUMPS, days=BACKTEST_DAYS):
    """Per-pump degradation histories with exact ground-truth lives."""
    gen = np.random.default_rng(seed)
    pump_ids, times, service, da = [], [], [], []
    lives = {}
    for pump in range(n_pumps):
        life = 150.0 if pump % 2 else 450.0
        lives[pump] = life
        age0 = gen.uniform(0, 0.5 * life)
        slope = 0.35 / life
        t = np.arange(0.0, days, 1.0)
        pump_ids.append(np.full(t.size, pump))
        times.append(t)
        service.append(age0 + t)
        da.append(0.05 + slope * (age0 + t) + gen.normal(0, 0.008, t.size))
    return (
        np.concatenate(pump_ids),
        np.concatenate(times),
        np.concatenate(service),
        np.concatenate(da),
        lives,
    )


BACKTEST_THRESHOLD = 0.05 + 0.35 * 0.85


def backtest_args():
    pumps, times, service, da, lives = fleet_history()
    return (pumps, times, service, da, lives, BACKTEST_THRESHOLD)


def day_engine(engine):
    return RecursiveRANSAC(
        residual_threshold=0.05, min_inliers=30, seed=0, engine=engine
    )


class TestRansacFit:
    def test_perf_reference_fit(self, benchmark):
        x, z = fleet_scatter()
        benchmark.pedantic(
            lambda: make_fitter().fit_reference(x, z),
            rounds=FIT_ROUNDS,
            iterations=1,
        )
        _TIMINGS["fit_reference"] = benchmark.stats.stats.min

    def test_perf_batched_fit(self, benchmark):
        x, z = fleet_scatter()
        # Parity before timing: same model floats, same inlier set.
        batched = make_fitter().fit(x, z)
        reference = make_fitter().fit_reference(x, z)
        assert batched.slope == reference.slope
        assert batched.intercept == reference.intercept
        assert np.array_equal(batched.inlier_indices, reference.inlier_indices)
        benchmark.pedantic(
            lambda: make_fitter().fit(x, z), rounds=FIT_ROUNDS, iterations=1
        )
        _TIMINGS["fit_batched"] = benchmark.stats.stats.min

    def test_perf_ransac_fit_gate(self):
        if "fit_batched" not in _TIMINGS:  # pragma: no cover
            pytest.skip("timing benchmarks did not run")
        speedup = _TIMINGS["fit_reference"] / _TIMINGS["fit_batched"]
        _REPORT.setdefault("seconds", {}).update(
            fit_reference=_TIMINGS["fit_reference"],
            fit_batched=_TIMINGS["fit_batched"],
        )
        _REPORT["ransac_fit_speedup"] = speedup
        gated = _native.available()
        _REPORT.setdefault("gate_pass", {})["ransac_fit_speedup"] = (
            speedup >= GATES["ransac_fit_speedup"] if gated else None
        )
        print(
            f"\nbatched RANSAC fit ({FIT_POINTS} pts x {FIT_TRIALS} trials): "
            f"{speedup:.2f}x over scalar reference "
            f"(reference {_TIMINGS['fit_reference'] * 1e3:.1f} ms, "
            f"batched {_TIMINGS['fit_batched'] * 1e3:.1f} ms, "
            f"native kernel {'on' if gated else 'off'})"
        )
        if not gated:
            pytest.skip("fused C kernel unavailable; speedup recorded ungated")
        assert speedup >= GATES["ransac_fit_speedup"]


class TestBacktest:
    def test_perf_reference_backtest(self, benchmark):
        args = backtest_args()
        benchmark.pedantic(
            lambda: backtest_rul_reference(
                *args,
                refresh_every_days=BACKTEST_REFRESH,
                ransac=day_engine("reference"),
            ),
            rounds=BACKTEST_ROUNDS,
            iterations=1,
        )
        _TIMINGS["backtest_reference"] = benchmark.stats.stats.min

    def test_perf_incremental_backtest(self, benchmark):
        args = backtest_args()
        # Parity before timing: identically configured engines, so both
        # paths perform the same fits and must emit identical points.
        fast = backtest_rul(
            *args, refresh_every_days=BACKTEST_REFRESH, ransac=day_engine("batched")
        )
        reference = backtest_rul_reference(
            *args,
            refresh_every_days=BACKTEST_REFRESH,
            ransac=day_engine("reference"),
        )
        assert len(fast.points) == len(reference.points) > 0
        for a, b in zip(fast.points, reference.points):
            assert a == b
        benchmark.pedantic(
            lambda: backtest_rul(
                *args,
                refresh_every_days=BACKTEST_REFRESH,
                ransac=day_engine("batched"),
            ),
            rounds=BACKTEST_ROUNDS,
            iterations=1,
        )
        _TIMINGS["backtest_fast"] = benchmark.stats.stats.min

    def test_perf_backtest_gate(self):
        if "backtest_fast" not in _TIMINGS:  # pragma: no cover
            pytest.skip("timing benchmarks did not run")
        speedup = _TIMINGS["backtest_reference"] / _TIMINGS["backtest_fast"]
        _REPORT.setdefault("seconds", {}).update(
            backtest_reference=_TIMINGS["backtest_reference"],
            backtest_fast=_TIMINGS["backtest_fast"],
        )
        _REPORT["backtest_speedup"] = speedup
        _REPORT.setdefault("gate_pass", {})["backtest_speedup"] = (
            speedup >= GATES["backtest_speedup"]
        )
        print(
            f"\nincremental backtest ({BACKTEST_PUMPS} pumps, "
            f"{BACKTEST_DAYS:.0f} days @ {BACKTEST_REFRESH:.0f}d refresh): "
            f"{speedup:.2f}x over per-day rescan with scalar fits "
            f"(reference {_TIMINGS['backtest_reference'] * 1e3:.0f} ms, "
            f"fast {_TIMINGS['backtest_fast'] * 1e3:.0f} ms)"
        )
        assert speedup >= GATES["backtest_speedup"]


class TestKdeInformational:
    def test_perf_tiled_pdf(self, benchmark):
        """Informational: tiled KDE density at fleet scale (no gate —
        tiling bounds scratch memory, it does not change the flops)."""
        gen = np.random.default_rng(0)
        kde = GaussianKDE1D(gen.normal(0.2, 0.05, KDE_SAMPLES))
        grid = np.linspace(0.0, 0.5, KDE_GRID)
        dens = benchmark.pedantic(lambda: kde.pdf(grid), rounds=3, iterations=1)
        assert dens.shape == (KDE_GRID,)
        _TIMINGS["kde_pdf"] = benchmark.stats.stats.min
        _REPORT.setdefault("seconds", {})["kde_pdf"] = benchmark.stats.stats.min
