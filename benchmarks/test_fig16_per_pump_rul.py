"""Fig. 16 + Table IV's prediction rows: per-pump RUL model predictions.

For each of the 12 pumps, the paper selects the best-fitting population
lifetime model, anchors it to the pump's own D_a trajectory, and projects
the crossing of the Zone D threshold; predictions are then compared with
the RUL the domain experts diagnosed.  Here the simulator's ground truth
plays the expert role, and the benchmark verifies that predictions
correlate with truth, that sign (overdue vs healthy) is usually right,
and that both lifetime populations are represented among the pumps.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.viz.export import write_csv


def run_experiment() -> dict:
    return rul_fleet_analysis()


def test_fig16_per_pump_rul(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    dataset, result = out["dataset"], out["result"]
    pumps, service = out["pumps"], out["service"]

    print("\nFig. 16 / Table IV: per-pump RUL predictions vs ground truth")
    print(f"{'pump':>4}  {'population':>10}  {'true RUL':>8}  {'predicted':>9}  "
          f"{'model':>5}")
    rows = []
    predicted = []
    truth = []
    for pump_info in dataset.pumps:
        pump = pump_info.pump_id
        prediction = result.rul.get(pump)
        member = pumps == pump
        latest_service = float(service[member].max())
        true_rul = pump_info.life_days - latest_service
        if prediction is None:
            print(f"{pump:>4}  {pump_info.model_name:>10}  {true_rul:>8.0f}  "
                  f"{'-':>9}  {'-':>5}")
            continue
        predicted.append(prediction.rul_days)
        truth.append(true_rul)
        print(
            f"{pump:>4}  {pump_info.model_name:>10}  {true_rul:>8.0f}"
            f"  {prediction.rul_days:>9.0f}  {prediction.model_index + 1:>5}"
        )
        rows.append(
            [pump, pump_info.model_name, f"{true_rul:.1f}",
             f"{prediction.rul_days:.1f}", prediction.model_index + 1,
             f"{latest_service:.1f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "fig16_per_pump_rul.csv",
        ["pump", "population", "true_rul_days", "predicted_rul_days",
         "assigned_model", "latest_service_days"],
        rows,
    )

    predicted_arr = np.asarray(predicted)
    truth_arr = np.asarray(truth)
    assert predicted_arr.size >= 10, "nearly every pump gets a prediction"

    # Predictions track ground truth: strong rank correlation.
    def rank(a):
        order = np.argsort(a)
        ranks = np.empty_like(order, dtype=float)
        ranks[order] = np.arange(a.size)
        return ranks

    spearman = np.corrcoef(rank(predicted_arr), rank(truth_arr))[0, 1]
    print(f"\nSpearman correlation predicted vs true RUL: {spearman:.3f}")
    assert spearman > 0.6

    # Sign agreement on clearly-decided pumps (|true RUL| > 45 days):
    # healthy pumps predicted positive, overdue pumps negative, mostly.
    decided = np.abs(truth_arr) > 45
    if decided.sum() >= 4:
        agreement = (np.sign(predicted_arr[decided]) == np.sign(truth_arr[decided])).mean()
        print(f"sign agreement on decided pumps: {agreement:.2%}")
        assert agreement >= 0.6

    # Both populations appear among the model assignments (the paper's
    # Table IV shows pumps split between Model 1 and Model 2).
    assigned = {result.rul[p.pump_id].model_index
                for p in dataset.pumps if p.pump_id in result.rul}
    assert len(assigned) >= 2
