"""Ablation: sensitivity of zone classification to n_h and n_p.

Sec. IV-B calls the Hann window size ``n_h`` and the peak budget ``n_p``
"important control parameters deciding the sensitivity of the peaks" and
reports using (n_p=20, n_h=24).  This ablation sweeps both around the
paper's operating point and verifies that (a) the paper's setting is in
the high-accuracy plateau and (b) degenerate settings (no smoothing, or a
single peak) measurably hurt.
"""

import numpy as np

from common import ARTIFACTS_DIR, labelled_zone_dataset, stratified_train_test
from repro.analysis.metrics import evaluate_labels
from repro.core.classify import ZONE_A, OrderedThresholdClassifier
from repro.core.distance import peak_harmonic_distance
from repro.core.peaks import extract_harmonic_peaks
from repro.viz.export import write_csv

WINDOW_SIZES = (1, 6, 12, 24, 48, 96)
PEAK_COUNTS = (1, 3, 5, 10, 20, 40)


def accuracy_for(params: tuple[int, int], data: dict, splits) -> float:
    """Mean test accuracy over the splits for one (n_h, n_p) setting."""
    window_size, num_peaks = params
    psds, labels, freqs = data["psds"], data["labels"], data["freqs"]
    peaks = [
        extract_harmonic_peaks(
            psd, freqs, num_peaks=num_peaks, window_size=window_size
        )
        for psd in psds
    ]
    accuracies = []
    for train_idx, test_idx in splits:
        a_train = train_idx[labels[train_idx] == ZONE_A]
        baseline = extract_harmonic_peaks(
            psds[a_train].mean(axis=0), freqs,
            num_peaks=num_peaks, window_size=window_size,
        )
        da = np.asarray([peak_harmonic_distance(p, baseline) for p in peaks])
        clf = OrderedThresholdClassifier().fit(da[train_idx], labels[train_idx])
        report = evaluate_labels(labels[test_idx], clf.predict(da[test_idx]))
        accuracies.append(report.accuracy)
    return float(np.mean(accuracies))


def run_experiment() -> dict:
    data = labelled_zone_dataset(150, 300, 150, seed=5)
    rng = np.random.default_rng(0)
    splits = [stratified_train_test(data["labels"], 10, rng) for _ in range(3)]

    window_sweep = {
        n_h: accuracy_for((n_h, 20), data, splits) for n_h in WINDOW_SIZES
    }
    peak_sweep = {
        n_p: accuracy_for((24, n_p), data, splits) for n_p in PEAK_COUNTS
    }
    return {"window_sweep": window_sweep, "peak_sweep": peak_sweep}


def test_ablation_peak_params(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nAblation: Hann window size n_h (n_p fixed at 20)")
    for n_h, acc in out["window_sweep"].items():
        marker = "  <- paper" if n_h == 24 else ""
        print(f"  n_h={n_h:>3}: accuracy={acc:.3f}{marker}")
    print("Ablation: peak budget n_p (n_h fixed at 24)")
    for n_p, acc in out["peak_sweep"].items():
        marker = "  <- paper" if n_p == 20 else ""
        print(f"  n_p={n_p:>3}: accuracy={acc:.3f}{marker}")

    write_csv(
        ARTIFACTS_DIR / "ablation_peak_params.csv",
        ["parameter", "value", "accuracy"],
        [["n_h", k, f"{v:.4f}"] for k, v in out["window_sweep"].items()]
        + [["n_p", k, f"{v:.4f}"] for k, v in out["peak_sweep"].items()],
    )

    paper_acc = out["window_sweep"][24]
    # The paper's operating point sits in the high plateau: within 5% of
    # the best setting in both sweeps.
    assert paper_acc >= max(out["window_sweep"].values()) - 0.05
    assert out["peak_sweep"][20] >= max(out["peak_sweep"].values()) - 0.05
    # A single peak throws away the harmonic structure and hurts.
    assert out["peak_sweep"][1] < out["peak_sweep"][20] - 0.03
