"""Ablation: Flush reliable transport vs best-effort under packet loss.

Sec. II: "It is crucial to the system to reliably receive all packets, in
order to recover all 1024 samples" — hence Flush.  This ablation sweeps
the link loss rate (including bursty Gilbert-Elliott losses) and measures
measurement recovery rate and transmission overhead for both transports.
"""

import numpy as np

from common import ARTIFACTS_DIR
from repro.sensornet.flush import best_effort_transfer, flush_transfer
from repro.sensornet.packets import PACKETS_PER_MEASUREMENT, fragment_measurement
from repro.sensornet.radio import LossyLink
from repro.viz.export import write_csv

LOSS_RATES = (0.01, 0.05, 0.1, 0.2, 0.35)
TRIALS = 15


def run_experiment() -> dict:
    gen = np.random.default_rng(0)
    results = {}
    for loss in LOSS_RATES:
        flush_ok = naive_ok = 0
        flush_tx = []
        for trial in range(TRIALS):
            counts = gen.integers(-2000, 2000, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            stats, _ = flush_transfer(
                packets, LossyLink(loss, seed=trial), max_rounds=60
            )
            flush_ok += stats.success
            flush_tx.append(stats.data_transmissions / len(packets))
            naive, _ = best_effort_transfer(
                packets, LossyLink(loss, seed=5000 + trial)
            )
            naive_ok += naive.success
        # Bursty variant at the same average loss.
        bursty_ok = 0
        for trial in range(TRIALS):
            counts = gen.integers(-2000, 2000, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            link = LossyLink(
                loss_probability=loss / 2,
                burst_loss_probability=0.9,
                p_good_to_bad=0.02,
                p_bad_to_good=0.2,
                seed=trial,
            )
            stats, _ = flush_transfer(packets, link, max_rounds=60)
            bursty_ok += stats.success
        results[loss] = {
            "flush_recovery": flush_ok / TRIALS,
            "naive_recovery": naive_ok / TRIALS,
            "flush_overhead": float(np.mean(flush_tx)),
            "flush_bursty_recovery": bursty_ok / TRIALS,
        }
    return results


def test_ablation_flush_transport(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print(f"\nAblation: transport recovery of {PACKETS_PER_MEASUREMENT}-packet "
          f"measurements")
    print(f"{'loss':>6}  {'flush':>6}  {'flush(bursty)':>13}  "
          f"{'best-effort':>11}  {'overhead':>8}")
    rows = []
    for loss, r in results.items():
        print(
            f"{loss:>6.0%}  {r['flush_recovery']:>6.0%}"
            f"  {r['flush_bursty_recovery']:>13.0%}"
            f"  {r['naive_recovery']:>11.0%}  {r['flush_overhead']:>7.2f}x"
        )
        rows.append(
            [f"{loss:.2f}", f"{r['flush_recovery']:.3f}",
             f"{r['flush_bursty_recovery']:.3f}", f"{r['naive_recovery']:.3f}",
             f"{r['flush_overhead']:.3f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "ablation_flush_transport.csv",
        ["loss_rate", "flush_recovery", "flush_bursty_recovery",
         "best_effort_recovery", "flush_tx_overhead"],
        rows,
    )

    for loss, r in results.items():
        # Flush delivers everything at every loss rate, Bernoulli or bursty.
        assert r["flush_recovery"] == 1.0
        assert r["flush_bursty_recovery"] == 1.0
        # Transmission overhead stays near the information-theoretic
        # floor 1/(1-loss).
        assert r["flush_overhead"] < 2.0 / (1 - loss)
    # Best effort collapses: with >= 5% loss, recovering all 120 packets
    # in one pass is essentially impossible.
    assert results[0.05]["naive_recovery"] <= 0.2
    assert results[0.2]["naive_recovery"] == 0.0
