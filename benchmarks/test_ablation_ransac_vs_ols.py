"""Ablation: recursive RANSAC vs ordinary least squares on mixed fleets.

Sec. IV-C argues that maintenance events and mixed equipment populations
make a single least-squares trend useless for lifetime modelling.  This
ablation plants two populations plus maintenance-spike outliers and
compares (a) slope recovery error and (b) the implied RUL error at the
hazard threshold, for OLS (one line through everything) vs recursive
RANSAC (one line per discovered population).
"""

import numpy as np

from common import ARTIFACTS_DIR
from repro.core.ransac import RecursiveRANSAC, fit_line_least_squares
from repro.viz.export import write_csv

TRUE_SLOPES = (0.0006, 0.0018)
TRUE_INTERCEPT = 0.06
THRESHOLD = 0.35


def make_fleet_scatter(outlier_fraction: float, seed: int):
    gen = np.random.default_rng(seed)
    x1 = gen.uniform(0, 480, size=400)
    z1 = TRUE_SLOPES[0] * x1 + TRUE_INTERCEPT + gen.normal(0, 0.012, size=400)
    x2 = gen.uniform(0, 160, size=250)
    z2 = TRUE_SLOPES[1] * x2 + TRUE_INTERCEPT + gen.normal(0, 0.012, size=250)
    x = np.concatenate([x1, x2])
    z = np.concatenate([z1, z2])
    n_outliers = int(outlier_fraction * x.size)
    idx = gen.choice(x.size, size=n_outliers, replace=False)
    z[idx] += gen.uniform(0.1, 0.6, size=n_outliers)  # maintenance spikes
    return x, z


def run_experiment() -> dict:
    results = {}
    for outlier_fraction in (0.0, 0.1, 0.2, 0.3):
        x, z = make_fleet_scatter(outlier_fraction, seed=int(outlier_fraction * 100))
        ols_slope, ols_intercept = fit_line_least_squares(x, z)
        rr = RecursiveRANSAC(
            residual_threshold=0.04, min_inliers=100, min_slope=1e-5, seed=0
        )
        models = rr.fit(x, z)
        ransac_slopes = sorted(m.slope for m in models)[:2]

        # Slope recovery error against the closest planted slope.
        def slope_error(slopes):
            planted = np.asarray(TRUE_SLOPES)
            return float(
                np.mean(
                    [min(abs(s - p) / p for p in planted) for s in slopes]
                )
            )

        results[outlier_fraction] = {
            "ols_slope": ols_slope,
            "ols_error": slope_error([ols_slope]),
            "n_models": len(models),
            "ransac_slopes": ransac_slopes,
            "ransac_error": slope_error(ransac_slopes) if ransac_slopes else np.inf,
        }
    return results


def test_ablation_ransac_vs_ols(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nAblation: lifetime-model recovery, OLS vs recursive RANSAC")
    print(f"{'outliers':>8}  {'OLS slope':>10}  {'OLS err':>8}  "
          f"{'RANSAC slopes':>24}  {'RANSAC err':>10}")
    rows = []
    for frac, r in results.items():
        slopes_text = ", ".join(f"{s:.2e}" for s in r["ransac_slopes"])
        print(
            f"{frac:>8.0%}  {r['ols_slope']:>10.2e}  {r['ols_error']:>8.1%}"
            f"  {slopes_text:>24}  {r['ransac_error']:>10.1%}"
        )
        rows.append(
            [f"{frac:.2f}", f"{r['ols_slope']:.6e}", f"{r['ols_error']:.4f}",
             r["n_models"], f"{r['ransac_error']:.4f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "ablation_ransac_vs_ols.csv",
        ["outlier_fraction", "ols_slope", "ols_rel_error", "n_ransac_models",
         "ransac_rel_error"],
        rows,
    )

    for frac, r in results.items():
        # RANSAC recovers both planted populations...
        assert r["n_models"] >= 2, f"at {frac:.0%} outliers found {r['n_models']}"
        # ...with small relative slope error even under heavy spiking.
        assert r["ransac_error"] < 0.25
        # OLS, fitting one line through a two-population + spike mixture,
        # is always substantially worse.
        assert r["ols_error"] > 2 * r["ransac_error"]
