"""Figs. 12-14: precision / recall / accuracy vs number of training samples.

The paper's central classification experiment: the same
ordered-threshold zone classifier is trained with 5..50 labelled samples
using four different scalar features —

* **peak harmonic distance** from the Zone A exemplar (the contribution),
* **Euclidean distance** of the raw PSD from the Zone A mean,
* **Mahalanobis distance** from the Zone A PSD distribution, and
* **FICS temperature** —

and evaluated on the remaining ~2750 labelled measurements.  The expected
shape: peak-harmonic dominates and is stable even with few training
samples; Euclidean/Mahalanobis are worse and less stable; temperature
"does not work for classification at all".
"""

import numpy as np

from common import (
    ARTIFACTS_DIR,
    PAPER_LABEL_COUNTS,
    labelled_zone_dataset,
    stratified_train_test,
)
from repro.analysis.metrics import evaluate_labels
from repro.core.classify import (
    ZONE_A,
    ZONE_BC,
    ZONE_D,
    ZONES,
    OrderedThresholdClassifier,
)
from repro.core.distance import MahalanobisMetric, peak_harmonic_distance
from repro.core.peaks import extract_harmonic_peaks
from repro.viz.ascii import ascii_line_plot
from repro.viz.export import write_csv

TRAIN_SIZES = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
METRICS = ("peak_harmonic", "euclidean", "mahalanobis", "temperature")


def split_per_class(total: int) -> int:
    """Per-class training count for a total budget (3 balanced classes)."""
    return max(1, total // 3)


def compute_features(data: dict, train_idx: np.ndarray) -> dict[str, np.ndarray]:
    """Scalar feature per sample for each metric, given a training set."""
    psds, labels, temps, freqs = (
        data["psds"],
        data["labels"],
        data["temps"],
        data["freqs"],
    )
    peaks = data["peaks"]
    a_train = train_idx[labels[train_idx] == ZONE_A]

    baseline_psd = psds[a_train].mean(axis=0)
    baseline_peaks = extract_harmonic_peaks(baseline_psd, freqs)
    da = np.asarray([peak_harmonic_distance(p, baseline_peaks) for p in peaks])

    euclid = np.linalg.norm(psds - baseline_psd[None, :], axis=1)

    mahal = MahalanobisMetric(psds[a_train], shrinkage=0.5).distance_many(psds)

    return {
        "peak_harmonic": da,
        "euclidean": euclid,
        "mahalanobis": mahal,
        "temperature": temps,
    }


_MEMO: dict = {}


def run_experiment() -> dict:
    """Memoized: Table III reuses the same run at the n=15 operating point."""
    if "out" not in _MEMO:
        _MEMO["out"] = _run_experiment()
    return _MEMO["out"]


def _run_experiment() -> dict:
    data = dict(
        labelled_zone_dataset(
            PAPER_LABEL_COUNTS[ZONE_A],
            PAPER_LABEL_COUNTS[ZONE_BC],
            PAPER_LABEL_COUNTS[ZONE_D],
            seed=0,
        )
    )
    labels = data["labels"]
    # Harmonic peak features are training-independent: extract once.
    data["peaks"] = [
        extract_harmonic_peaks(psd, data["freqs"]) for psd in data["psds"]
    ]

    rng = np.random.default_rng(42)
    results: dict[str, dict[str, list[float]]] = {
        m: {"precision": [], "recall": [], "accuracy": []} for m in METRICS
    }
    confusions: dict[str, np.ndarray] = {}

    for total in TRAIN_SIZES:
        train_idx, test_idx = stratified_train_test(
            labels, split_per_class(total), rng
        )
        features = compute_features(data, train_idx)
        for metric in METRICS:
            values = features[metric]
            clf = OrderedThresholdClassifier().fit(values[train_idx], labels[train_idx])
            pred = clf.predict(values[test_idx])
            report = evaluate_labels(labels[test_idx], pred)
            results[metric]["precision"].append(report.macro_precision)
            results[metric]["recall"].append(report.macro_recall)
            results[metric]["accuracy"].append(report.accuracy)
            if total == 15:
                confusions[metric] = report.matrix
    return {"results": results, "confusions": confusions}


def test_fig12_14_classification(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    results = out["results"]

    sizes = np.asarray(TRAIN_SIZES, dtype=float)
    for quantity, fig in (("precision", 12), ("recall", 13), ("accuracy", 14)):
        print(f"\nFig. {fig}: macro {quantity} vs number of training samples")
        print(
            ascii_line_plot(
                sizes,
                {m: np.asarray(results[m][quantity]) for m in METRICS},
                x_label="training samples",
                y_label=quantity,
                height=12,
            )
        )
        write_csv(
            ARTIFACTS_DIR / f"fig{fig}_{quantity}.csv",
            ["train_samples"] + list(METRICS),
            [
                [int(s)] + [f"{results[m][quantity][i]:.4f}" for m in METRICS]
                for i, s in enumerate(TRAIN_SIZES)
            ],
        )

    print("\nSummary at 50 training samples:")
    for metric in METRICS:
        print(
            f"  {metric:<14} precision={results[metric]['precision'][-1]:.3f}"
            f" recall={results[metric]['recall'][-1]:.3f}"
            f" accuracy={results[metric]['accuracy'][-1]:.3f}"
        )

    ph = results["peak_harmonic"]
    # The contribution dominates every baseline on every aggregate metric
    # once a handful of training samples is available (>= 15).
    for quantity in ("precision", "recall", "accuracy"):
        for baseline in ("euclidean", "mahalanobis", "temperature"):
            ph_tail = np.mean(ph[quantity][2:])
            base_tail = np.mean(results[baseline][quantity][2:])
            assert ph_tail > base_tail, (
                f"peak_harmonic {quantity} {ph_tail:.3f} should beat "
                f"{baseline} {base_tail:.3f}"
            )
    # Temperature is near chance (the paper: "does not work at all").
    assert np.mean(results["temperature"]["accuracy"]) < 0.55
    # Peak harmonic is strong in absolute terms.
    assert np.mean(ph["accuracy"][2:]) > 0.75
