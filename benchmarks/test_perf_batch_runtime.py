"""Performance benchmark: batch runtime vs the scalar reference pipeline.

The runtime layer's acceptance numbers, over two workloads:

* a **synthetic** 960 × 1024 × 3 matrix (fast, low-variance timing), and
* the **paper-scale fleet** — ``FleetConfig.paper_scale()``'s 12-pump,
  90-day deployment, at the benchmark suite's default report density
  (~8,640 measurements; set ``REPRO_PAPER_SCALE=1`` for the full
  155,520-measurement volume).

Each workload runs three configurations:

* **scalar** — the reference :class:`AnalysisPipeline`, per-measurement
  loops everywhere;
* **batch cold** — :class:`BatchPipeline` with empty caches: the
  vectorized kernels alone (single 2-D DCT, batched smoothing and peak
  scan, broadcast calibration);
* **batch warm** — the same pipeline re-analyzing identical data, the
  operational steady state (``analyze`` → ``schedule`` → ``dashboard``
  all replay the same window): content-addressed transform + peak +
  distance caches serve the heavy stages.

Recorded gates (minimum over rounds, parity asserted on the results so
every speedup is for *bit-identical* outputs):

* synthetic: cold ≥ 1.3× (measured ≈ 1.6×), warm ≥ 3× (measured ≈ 4.5×);
* fleet: warm ≥ 3× (measured ≈ 3.7×).  Cold is roughly at parity here —
  at fleet scale the hot loop is peak extraction + Algorithm 1, whose
  batched form wins less than the transform does — so the fleet cold
  configuration is recorded but not gated above 1×.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import rul_fleet
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.runtime import BatchPipeline, PeakFeatureCache, TransformCache

N_PUMPS = 8
PER_PUMP = 120
K = 1024

COLD_SPEEDUP_GATE = 1.3
WARM_SPEEDUP_GATE = 3.0


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    ids, days, blocks = [], [], []
    t = np.arange(K) / 2000.0
    for pump in range(N_PUMPS):
        offset = rng.uniform(-0.5, 0.5, 3)
        for m in range(PER_PUMP):
            base = np.sin(2 * np.pi * 50 * t * (1 + 0.001 * pump))[:, None]
            base = base * rng.uniform(0.5, 1.5)
            noise = rng.normal(0, 0.05 + 0.002 * m, (K, 3))
            ids.append(pump)
            days.append(m // 4)
            blocks.append(base + noise + offset)
    labels: dict[int, str] = {}
    for pump in range(4):
        for m in range(8):
            labels[pump * PER_PUMP + m] = "A"
        labels[pump * PER_PUMP + PER_PUMP - 1] = "D"
        labels[pump * PER_PUMP + PER_PUMP - 2] = "BC"
        labels[pump * PER_PUMP + PER_PUMP - 3] = "BC"
        labels[pump * PER_PUMP + PER_PUMP - 4] = "D"
    return (
        np.asarray(ids),
        np.asarray(days, dtype=float),
        np.stack(blocks),
        labels,
    )


def fresh_batch() -> BatchPipeline:
    return BatchPipeline(
        PipelineConfig(),
        cache=PeakFeatureCache(),
        transform_cache=TransformCache(),
    )


_TIMINGS: dict[str, float] = {}


def test_perf_scalar_reference(benchmark, workload):
    ids, days, blocks, labels = workload
    pipeline = AnalysisPipeline(PipelineConfig())
    result = benchmark.pedantic(
        lambda: pipeline.run(ids, days, blocks, labels), rounds=3, iterations=1
    )
    _TIMINGS["scalar"] = benchmark.stats.stats.min
    assert result.da.size == ids.size


def test_perf_batch_cold(benchmark, workload):
    ids, days, blocks, labels = workload
    result = benchmark.pedantic(
        lambda: fresh_batch().run(ids, days, blocks, labels),
        rounds=3,
        iterations=1,
    )
    _TIMINGS["batch_cold"] = benchmark.stats.stats.min
    # Same floats as the scalar reference.
    reference = AnalysisPipeline(PipelineConfig()).run(ids, days, blocks, labels)
    assert np.array_equal(result.da, reference.da, equal_nan=True)


def test_perf_batch_warm(benchmark, workload):
    ids, days, blocks, labels = workload
    pipeline = fresh_batch()
    pipeline.run(ids, days, blocks, labels)  # populate the caches
    result = benchmark.pedantic(
        lambda: pipeline.run(ids, days, blocks, labels), rounds=3, iterations=1
    )
    _TIMINGS["batch_warm"] = benchmark.stats.stats.min
    assert pipeline.transform_cache.hits > 0
    assert result.da.size == ids.size


def test_perf_speedup_gates(workload):
    """Recorded speedups; runs after the three timing benchmarks above."""
    if len(_TIMINGS) < 3:  # pragma: no cover - benchmark-only collection
        pytest.skip("timing benchmarks did not run")
    scalar = _TIMINGS["scalar"]
    cold = scalar / _TIMINGS["batch_cold"]
    warm = scalar / _TIMINGS["batch_warm"]
    print(
        f"\nbatch runtime speedup over scalar ({N_PUMPS * PER_PUMP} x {K} x 3): "
        f"cold {cold:.2f}x, warm (cached re-analysis) {warm:.2f}x"
    )
    assert cold >= COLD_SPEEDUP_GATE
    assert warm >= WARM_SPEEDUP_GATE


# ----------------------------------------------------------------------
# Paper-scale fleet (FleetConfig.paper_scale() deployment shape).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_workload():
    dataset = rul_fleet(7)
    pumps, service, samples = dataset.measurement_arrays()
    _, labels = dataset.expert_labels({ZONE_A: 60, ZONE_BC: 60, ZONE_D: 40})
    config = PipelineConfig(
        moving_average_window=8,
        ransac_min_inliers=max(150, len(dataset.measurements) // 20),
        ransac_residual_threshold=0.05,
    )
    return pumps, service, samples, labels, config


def test_perf_fleet_scale_speedup(fleet_workload):
    """Scalar vs cold vs warm on the 12-pump fleet, min of 2 rounds each."""
    import time

    pumps, service, samples, labels, config = fleet_workload

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    reference, s1 = timed(
        lambda: AnalysisPipeline(config).run(pumps, service, samples, labels)
    )
    _, s2 = timed(
        lambda: AnalysisPipeline(config).run(pumps, service, samples, labels)
    )
    scalar_s = min(s1, s2)

    def fresh():
        return BatchPipeline(
            config, cache=PeakFeatureCache(), transform_cache=TransformCache()
        )

    cold_result, c1 = timed(lambda: fresh().run(pumps, service, samples, labels))
    pipeline = fresh()
    _, c2 = timed(lambda: pipeline.run(pumps, service, samples, labels))
    cold_s = min(c1, c2)

    warm_result, w1 = timed(lambda: pipeline.run(pumps, service, samples, labels))
    _, w2 = timed(lambda: pipeline.run(pumps, service, samples, labels))
    warm_s = min(w1, w2)

    assert np.array_equal(reference.da, cold_result.da, equal_nan=True)
    assert np.array_equal(reference.da, warm_result.da, equal_nan=True)

    cold = scalar_s / cold_s
    warm = scalar_s / warm_s
    print(
        f"\nfleet-scale ({samples.shape[0]} measurements) speedup over scalar: "
        f"cold {cold:.2f}x, warm (cached re-analysis) {warm:.2f}x "
        f"(scalar {scalar_s:.2f}s, cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )
    assert warm >= WARM_SPEEDUP_GATE
