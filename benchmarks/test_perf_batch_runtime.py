"""Performance benchmark: batch runtime vs the scalar reference pipeline.

The runtime layer's acceptance numbers, over two workloads:

* a **synthetic** 960 × 1024 × 3 matrix (fast, low-variance timing), and
* the **paper-scale fleet** — ``FleetConfig.paper_scale()``'s 12-pump,
  90-day deployment, at the benchmark suite's default report density
  (~8,640 measurements; set ``REPRO_PAPER_SCALE=1`` for the full
  155,520-measurement volume).

Each workload runs three configurations:

* **scalar** — the reference :class:`AnalysisPipeline`, per-measurement
  loops everywhere;
* **batch cold** — :class:`BatchPipeline` with empty caches: the
  vectorized kernels alone (single 2-D DCT, batched smoothing and peak
  scan, broadcast calibration, the packed Algorithm 1 distance kernel);
* **batch warm** — the same pipeline re-analyzing identical data, the
  operational steady state (``analyze`` → ``schedule`` → ``dashboard``
  all replay the same window): content-addressed transform + peak +
  distance caches serve the heavy stages.

Gates (minimum over rounds, parity asserted on the results so every
speedup is for *bit-identical* outputs):

* synthetic: cold ≥ 1.5×, warm ≥ 3×;
* fleet: cold ≥ 2×, warm ≥ 3×.  The fleet cold gate is the headline of
  the vectorized Algorithm 1 work — peak matching used to dominate the
  fleet-scale cold path and kept it near 1×; the packed kernel plus
  single-pass masked top-k moved it past 2×.

Set ``REPRO_PERF_RELAXED=1`` (the PR-smoke CI job does) to lower the
gates to regression-tripwire levels for noisy shared runners; main
branch CI runs the full gates.

Every run writes ``BENCH_3.json`` to the repo root — workload shapes,
rounds, raw timings, speedups and per-gate pass status — so CI can
archive the numbers as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from common import rul_fleet
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.runtime import BatchPipeline, PeakFeatureCache, TransformCache

pytestmark = pytest.mark.perf

N_PUMPS = 8
PER_PUMP = 120
K = 1024
ROUNDS = 3
FLEET_ROUNDS = 3

RELAXED = os.environ.get("REPRO_PERF_RELAXED", "") not in ("", "0")

#: Gate values: full (main-branch CI / local runs) vs relaxed (PR smoke on
#: noisy shared runners — still trips on a real regression to ~parity).
GATES = {
    "synthetic_cold": 1.1 if RELAXED else 1.5,
    "synthetic_warm": 1.5 if RELAXED else 3.0,
    "fleet_cold": 1.2 if RELAXED else 2.0,
    "fleet_warm": 1.5 if RELAXED else 3.0,
}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_3.json"

#: Mutable run record; the module-scoped reporter fixture writes it to
#: ``BENCH_3.json`` after the last test in this module finishes.
_REPORT: dict = {
    "benchmark": "batch_runtime",
    "relaxed_gates": RELAXED,
    "gates": dict(GATES),
    "workloads": {},
}

_TIMINGS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Persist the machine-readable benchmark record at module teardown."""
    yield
    BENCH_PATH.write_text(json.dumps(_REPORT, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    ids, days, blocks = [], [], []
    t = np.arange(K) / 2000.0
    for pump in range(N_PUMPS):
        offset = rng.uniform(-0.5, 0.5, 3)
        for m in range(PER_PUMP):
            base = np.sin(2 * np.pi * 50 * t * (1 + 0.001 * pump))[:, None]
            base = base * rng.uniform(0.5, 1.5)
            noise = rng.normal(0, 0.05 + 0.002 * m, (K, 3))
            ids.append(pump)
            days.append(m // 4)
            blocks.append(base + noise + offset)
    labels: dict[int, str] = {}
    for pump in range(4):
        for m in range(8):
            labels[pump * PER_PUMP + m] = "A"
        labels[pump * PER_PUMP + PER_PUMP - 1] = "D"
        labels[pump * PER_PUMP + PER_PUMP - 2] = "BC"
        labels[pump * PER_PUMP + PER_PUMP - 3] = "BC"
        labels[pump * PER_PUMP + PER_PUMP - 4] = "D"
    return (
        np.asarray(ids),
        np.asarray(days, dtype=float),
        np.stack(blocks),
        labels,
    )


def fresh_batch() -> BatchPipeline:
    return BatchPipeline(
        PipelineConfig(),
        cache=PeakFeatureCache(),
        transform_cache=TransformCache(),
    )


def test_perf_scalar_reference(benchmark, workload):
    ids, days, blocks, labels = workload
    pipeline = AnalysisPipeline(PipelineConfig())
    result = benchmark.pedantic(
        lambda: pipeline.run(ids, days, blocks, labels), rounds=ROUNDS, iterations=1
    )
    _TIMINGS["scalar"] = benchmark.stats.stats.min
    assert result.da.size == ids.size


def test_perf_batch_cold(benchmark, workload):
    ids, days, blocks, labels = workload
    result = benchmark.pedantic(
        lambda: fresh_batch().run(ids, days, blocks, labels),
        rounds=ROUNDS,
        iterations=1,
    )
    _TIMINGS["batch_cold"] = benchmark.stats.stats.min
    # Same floats as the scalar reference.
    reference = AnalysisPipeline(PipelineConfig()).run(ids, days, blocks, labels)
    assert np.array_equal(result.da, reference.da, equal_nan=True)


def test_perf_batch_warm(benchmark, workload):
    ids, days, blocks, labels = workload
    pipeline = fresh_batch()
    pipeline.run(ids, days, blocks, labels)  # populate the caches
    result = benchmark.pedantic(
        lambda: pipeline.run(ids, days, blocks, labels), rounds=ROUNDS, iterations=1
    )
    _TIMINGS["batch_warm"] = benchmark.stats.stats.min
    assert pipeline.transform_cache.hits > 0
    assert result.da.size == ids.size


def test_perf_speedup_gates(workload):
    """Recorded speedups; runs after the three timing benchmarks above."""
    if len(_TIMINGS) < 3:  # pragma: no cover - benchmark-only collection
        pytest.skip("timing benchmarks did not run")
    ids = workload[0]
    scalar = _TIMINGS["scalar"]
    cold = scalar / _TIMINGS["batch_cold"]
    warm = scalar / _TIMINGS["batch_warm"]
    _REPORT["workloads"]["synthetic"] = {
        "shape": [int(ids.size), K, 3],
        "rounds": ROUNDS,
        "seconds": {
            "scalar": _TIMINGS["scalar"],
            "batch_cold": _TIMINGS["batch_cold"],
            "batch_warm": _TIMINGS["batch_warm"],
        },
        "speedup": {"cold": cold, "warm": warm},
        "gate_pass": {
            "cold": cold >= GATES["synthetic_cold"],
            "warm": warm >= GATES["synthetic_warm"],
        },
    }
    print(
        f"\nbatch runtime speedup over scalar ({N_PUMPS * PER_PUMP} x {K} x 3): "
        f"cold {cold:.2f}x, warm (cached re-analysis) {warm:.2f}x"
    )
    assert cold >= GATES["synthetic_cold"]
    assert warm >= GATES["synthetic_warm"]


# ----------------------------------------------------------------------
# Paper-scale fleet (FleetConfig.paper_scale() deployment shape).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_workload():
    dataset = rul_fleet(7)
    pumps, service, samples = dataset.measurement_arrays()
    _, labels = dataset.expert_labels({ZONE_A: 60, ZONE_BC: 60, ZONE_D: 40})
    config = PipelineConfig(
        moving_average_window=8,
        ransac_min_inliers=max(150, len(dataset.measurements) // 20),
        ransac_residual_threshold=0.05,
    )
    return pumps, service, samples, labels, config


def test_perf_fleet_scale_speedup(fleet_workload):
    """Scalar vs cold vs warm on the 12-pump fleet, min over rounds."""
    import time

    pumps, service, samples, labels, config = fleet_workload

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    def fresh():
        return BatchPipeline(
            config, cache=PeakFeatureCache(), transform_cache=TransformCache()
        )

    # Untimed warmup: faults in allocator arenas and FFT plan caches at
    # fleet scale so the timed rounds measure compute, not first-touch.
    fresh().run(pumps, service, samples, labels)

    # Each configuration's rounds run back to back, cold before scalar:
    # the scalar reference churns millions of small per-row allocations
    # that fragment the allocator and measurably slow a *following*
    # large-block batch round, so interleaving would bias the cold
    # numbers.  Min-of-rounds then takes each configuration's best
    # clean round.
    cold_times = []
    for _ in range(FLEET_ROUNDS):
        pipeline = fresh()
        cold_result, c = timed(lambda: pipeline.run(pumps, service, samples, labels))
        cold_times.append(c)
    cold_s = min(cold_times)

    warm_times = []
    for _ in range(FLEET_ROUNDS):
        warm_result, w = timed(lambda: pipeline.run(pumps, service, samples, labels))
        warm_times.append(w)
    warm_s = min(warm_times)

    scalar_times = []
    for _ in range(FLEET_ROUNDS):
        reference, s = timed(
            lambda: AnalysisPipeline(config).run(pumps, service, samples, labels)
        )
        scalar_times.append(s)
    scalar_s = min(scalar_times)

    assert np.array_equal(reference.da, cold_result.da, equal_nan=True)
    assert np.array_equal(reference.da, warm_result.da, equal_nan=True)

    cold = scalar_s / cold_s
    warm = scalar_s / warm_s
    _REPORT["workloads"]["fleet"] = {
        "shape": [int(samples.shape[0]), int(samples.shape[1]), 3],
        "rounds": FLEET_ROUNDS,
        "seconds": {"scalar": scalar_s, "batch_cold": cold_s, "batch_warm": warm_s},
        "speedup": {"cold": cold, "warm": warm},
        "gate_pass": {
            "cold": cold >= GATES["fleet_cold"],
            "warm": warm >= GATES["fleet_warm"],
        },
    }
    print(
        f"\nfleet-scale ({samples.shape[0]} measurements) speedup over scalar: "
        f"cold {cold:.2f}x, warm (cached re-analysis) {warm:.2f}x "
        f"(scalar {scalar_s:.2f}s, cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )
    assert cold >= GATES["fleet_cold"]
    assert warm >= GATES["fleet_warm"]
