"""Ablation: peak-matched distance vs raw-PSD Euclidean under sensor noise.

The paper's motivation for the harmonic peak feature is that raw PSD
amplitudes fluctuate heavily with MEMS measurement noise, so raw-vector
metrics degrade while the peak-matched metric stays stable.  This
ablation sweeps the sensor noise density from piezo-grade (700 µg/√Hz)
past MEMS-grade (4000) to worse, and tracks both features' zone accuracy.
"""

import numpy as np

from common import (
    ARTIFACTS_DIR,
    SAMPLES_PER_MEASUREMENT,
    SAMPLING_RATE_HZ,
    stratified_train_test,
)
from repro.analysis.metrics import evaluate_labels
from repro.core.classify import ZONE_A, OrderedThresholdClassifier
from repro.core.distance import peak_harmonic_distance
from repro.core.features import psd_feature, psd_frequencies
from repro.core.peaks import extract_harmonic_peaks
from repro.simulation.mems import MEMSSensor, MEMSSensorConfig, SENSOR_SPECS, SensorSpec
from repro.simulation.signal import VibrationSynthesizer
from repro.viz.export import write_csv

NOISE_DENSITIES = (700.0, 2000.0, 4000.0, 8000.0, 16000.0)
ZONE_WEARS = {"A": (0.02, 0.28), "BC": (0.32, 0.83), "D": (0.87, 1.15)}
SAMPLES_PER_ZONE = 120


def dataset_at_noise(noise_density: float, seed: int) -> dict:
    spec = SensorSpec(
        name=f"sweep-{noise_density}",
        price_usd=10.0,
        power_mw=3.0,
        size_inches=(0.2, 0.2, 0.05),
        noise_density_ug_per_rthz=noise_density,
        resonance_khz=22.0,
        accel_range_g=100.0,
    )
    rng = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(MEMSSensorConfig(spec=spec), np.random.default_rng(seed + 1))
    freqs = psd_frequencies(SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ)
    psds, labels = [], []
    for zone, (lo, hi) in ZONE_WEARS.items():
        for _ in range(SAMPLES_PER_ZONE):
            wear = float(rng.uniform(lo, hi))
            block = synth.synthesize(wear, SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ, rng)
            psds.append(psd_feature(sensor.measure_g(block, 0.0, SAMPLING_RATE_HZ)))
            labels.append(zone)
    return {
        "psds": np.stack(psds),
        "labels": np.asarray(labels, dtype=object),
        "freqs": freqs,
    }


def accuracies_at_noise(noise_density: float, seed: int) -> tuple[float, float]:
    data = dataset_at_noise(noise_density, seed)
    psds, labels, freqs = data["psds"], data["labels"], data["freqs"]
    rng = np.random.default_rng(seed + 7)
    train_idx, test_idx = stratified_train_test(labels, 10, rng)
    a_train = train_idx[labels[train_idx] == ZONE_A]

    baseline_peaks = extract_harmonic_peaks(psds[a_train].mean(axis=0), freqs)
    peaks = [extract_harmonic_peaks(p, freqs) for p in psds]
    da = np.asarray([peak_harmonic_distance(p, baseline_peaks) for p in peaks])
    euclid = np.linalg.norm(psds - psds[a_train].mean(axis=0)[None, :], axis=1)

    def accuracy(values):
        clf = OrderedThresholdClassifier().fit(values[train_idx], labels[train_idx])
        return evaluate_labels(labels[test_idx], clf.predict(values[test_idx])).accuracy

    return accuracy(da), accuracy(euclid)


def run_experiment() -> dict:
    rows = {}
    for density in NOISE_DENSITIES:
        rows[density] = accuracies_at_noise(density, seed=int(density) % 997)
    return rows


def test_ablation_noise_robustness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nAblation: zone accuracy vs sensor noise density (µg/√Hz)")
    print(f"{'noise':>7}  {'peak harmonic':>13}  {'euclidean':>9}")
    for density, (ph, eu) in rows.items():
        tag = ""
        if density == SENSOR_SPECS["piezo"].noise_density_ug_per_rthz:
            tag = "  <- piezo grade"
        if density == SENSOR_SPECS["mems"].noise_density_ug_per_rthz:
            tag = "  <- MEMS grade"
        print(f"{density:>7.0f}  {ph:>13.3f}  {eu:>9.3f}{tag}")
    write_csv(
        ARTIFACTS_DIR / "ablation_noise_robustness.csv",
        ["noise_density_ug_rthz", "peak_harmonic_accuracy", "euclidean_accuracy"],
        [[f"{d:.0f}", f"{ph:.4f}", f"{eu:.4f}"] for d, (ph, eu) in rows.items()],
    )

    # Within the hardware range the paper targets (piezo grade through
    # MEMS grade), the peak-matched metric clearly beats the raw-PSD
    # metric — the paper's reason for building it.
    for density in (700.0, 2000.0, 4000.0):
        ph, eu = rows[density]
        assert ph > eu + 0.1, f"at {density}: peak={ph:.3f} vs euclid={eu:.3f}"
    # Finding: the advantage has a noise ceiling.  At 2-4x MEMS noise the
    # spectral peaks themselves drown and the peak feature collapses
    # below the energy-driven Euclidean metric — the method is the right
    # choice for the paper's sensors, not unconditionally.
    assert rows[4000.0][0] > 0.75
    assert rows[16000.0][0] < rows[4000.0][0] - 0.2
