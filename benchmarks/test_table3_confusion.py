"""Table III: confusion tables at 15 training samples.

Regenerates the paper's confusion tables for all four feature metrics at
the 15-training-sample operating point and checks the paper's key safety
observation: the raw-PSD baselines (Euclidean/Mahalanobis) misclassify a
substantial share of Zone D measurements as Zone BC — the error class the
paper calls "mostly fatal to the Fab" — while the peak harmonic feature
keeps that fatal error rate low.
"""

import numpy as np

from common import ARTIFACTS_DIR
from repro.core.classify import ZONES
from repro.viz.export import write_csv

from test_fig12_14_classification import METRICS, run_experiment


def test_table3_confusion(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    confusions = out["confusions"]

    print("\nTable III: confusion tables at 15 training samples")
    rows = []
    for metric in METRICS:
        matrix = confusions[metric]
        print(f"\n{metric} (rows = truth, cols = predicted {ZONES}):")
        for i, zone in enumerate(ZONES):
            print(f"  {zone:>4} {matrix[i].tolist()}")
        for i, true_zone in enumerate(ZONES):
            for j, pred_zone in enumerate(ZONES):
                rows.append([metric, true_zone, pred_zone, int(matrix[i, j])])
    write_csv(
        ARTIFACTS_DIR / "table3_confusion.csv",
        ["metric", "true_zone", "pred_zone", "count"],
        rows,
    )

    def fatal_rate(matrix: np.ndarray) -> float:
        """Zone D measurements classified below Zone D."""
        d_row = matrix[2]
        return (d_row[0] + d_row[1]) / max(d_row.sum(), 1)

    ph_fatal = fatal_rate(confusions["peak_harmonic"])
    print(f"\nfatal D->(A|BC) rates: "
          + ", ".join(f"{m}={fatal_rate(confusions[m]):.2%}" for m in METRICS))

    # The paper's observation: the baselines' D rows leak into BC far
    # more than the peak harmonic feature's.
    assert ph_fatal < fatal_rate(confusions["euclidean"])
    assert ph_fatal < fatal_rate(confusions["mahalanobis"])
    assert ph_fatal < 0.35
    # Temperature's confusion table is near-uniform garbage: its accuracy
    # over the table is close to chance.
    temp = confusions["temperature"]
    assert temp.trace() / temp.sum() < 0.55
