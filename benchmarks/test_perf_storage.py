"""Performance benchmarks: the storage engine under measurement load.

The paper's system continuously lands 6 KB measurement blocks in the
sensor database and re-reads analysis-period windows on every refresh.
These benchmarks size that data path: bulk insert throughput, windowed
query latency, the dense-matrix construction the transformation layer
consumes, and retention compaction.
"""

import numpy as np
import pytest

from repro.storage.aggregate import RetentionManager
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase
from repro.storage.records import Measurement

N_MEASUREMENTS = 1000
K = 1024


def make_measurements(n=N_MEASUREMENTS, k=K, seed=0):
    gen = np.random.default_rng(seed)
    return [
        Measurement(
            pump_id=i % 12,
            measurement_id=i,
            timestamp_day=i * 0.01,
            service_day=i * 0.01,
            samples=gen.normal(size=(k, 3)).astype(np.float32),
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def corpus():
    return make_measurements()


@pytest.fixture(scope="module")
def loaded_db(corpus):
    db = VibrationDatabase()
    db.measurements.add_many(corpus)
    yield db
    db.close()


def test_perf_bulk_insert(benchmark, corpus):
    """Insert 1,000 full 6 KB measurements (one day of a 12-pump fleet
    at ~7x the paper's report rate)."""

    def insert():
        with VibrationDatabase() as db:
            db.measurements.add_many(corpus)
            return db.measurements.count()

    count = benchmark.pedantic(insert, rounds=3, iterations=1)
    assert count == N_MEASUREMENTS


def test_perf_window_query(benchmark, loaded_db):
    """Read a 20%-of-history analysis window with sample decoding."""

    def query():
        return loaded_db.measurements.query(2.0, 4.0)

    records = benchmark(query)
    assert len(records) == 200
    assert records[0].samples.shape == (K, 3)


def test_perf_matrix_construction(benchmark, loaded_db):
    """The retrieval API's dense-array path feeding the pipeline."""
    api = DataRetrievalAPI(loaded_db, AnalysisPeriod(0.0, 5.0))

    def build():
        return api.measurement_matrices()

    pumps, mids, service, samples = benchmark(build)
    assert samples.shape == (500, K, 3)


def test_perf_retention_compaction(benchmark):
    """Aggregate-and-delete of 5 pump-days of raw blocks."""

    def compact():
        with VibrationDatabase() as db:
            db.measurements.add_many(make_measurements(n=300, k=256))
            manager = RetentionManager(db)
            return manager.compact(keep_raw_days=1.0, now_day=4.0)

    outcome = benchmark.pedantic(compact, rounds=3, iterations=1)
    assert outcome["raw_deleted"] > 0
    assert outcome["summaries_written"] > 0
