"""Fig. 5: sampling frequency vs report-period lower bound vs node lifetime.

Sweeps the sampling frequency from 150 Hz to 22 kHz for target node
lifetimes of 1-4 years and regenerates the report-period lower-bound
curves, checking the paper's two worked anchors (10.2 h at 150 Hz / 3 yr
and 5.2 h at 150 Hz / 2 yr) and the curve shape (bound grows as sampling
frequency decreases; longer targets demand longer periods).
"""

import numpy as np
import pytest

from common import ARTIFACTS_DIR
from repro.sensornet.energy import EnergyModel
from repro.viz.ascii import ascii_line_plot
from repro.viz.export import write_csv

TARGET_YEARS = (1, 2, 3, 4)


def sweep() -> tuple[np.ndarray, dict[int, np.ndarray]]:
    model = EnergyModel()
    rates = np.logspace(np.log10(150.0), np.log10(22_000.0), 32)
    curves = {years: model.tradeoff_curve(rates, years) for years in TARGET_YEARS}
    return rates, curves


def test_fig5_energy_tradeoff(benchmark):
    rates, curves = benchmark(sweep)

    print("\nFig. 5: report period lower bound (hours)")
    print(
        ascii_line_plot(
            np.log10(rates),
            {f"{y} yr": curves[y] for y in TARGET_YEARS},
            title="Report period lower bound vs log10(sampling rate)",
            x_label="log10 fs (Hz)",
            y_label="hours",
        )
    )
    rows = [
        [f"{fs:.0f}"] + [f"{curves[y][i]:.3f}" for y in TARGET_YEARS]
        for i, fs in enumerate(rates)
    ]
    write_csv(
        ARTIFACTS_DIR / "fig5_energy_tradeoff.csv",
        ["sampling_hz"] + [f"bound_hours_{y}yr" for y in TARGET_YEARS],
        rows,
    )

    model = EnergyModel()
    # Paper's worked anchors.
    assert model.report_period_lower_bound_s(150.0, 3.0) / 3600 == pytest.approx(
        10.2, rel=0.1
    )
    assert model.report_period_lower_bound_s(150.0, 2.0) / 3600 == pytest.approx(
        5.2, rel=0.1
    )
    assert model.measurements_in_lifetime(150.0, 3.0) == pytest.approx(2576, rel=0.1)
    assert model.measurements_in_lifetime(150.0, 2.0) == pytest.approx(3650, rel=0.1)
    # Shape: every curve decreases with sampling rate; longer target
    # lifetime sits strictly above shorter.
    for years in TARGET_YEARS:
        assert (np.diff(curves[years]) < 0).all()
    for lo, hi in zip(TARGET_YEARS[:-1], TARGET_YEARS[1:]):
        assert (curves[hi] > curves[lo]).all()
