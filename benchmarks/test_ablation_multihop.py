"""Ablation: Flush end-to-end reliability over multihop paths.

Flush [8] is a multihop bulk transport; the paper's deployment is
single-hop but deeper fab topologies (sensor → relay motes → gateway) are
natural.  This ablation sweeps the hop count at fixed per-link loss and
measures measurement recovery, transmission overhead and per-link load —
verifying that reliability is preserved at every depth while cost grows
with the compounding per-packet delivery probability.
"""

import numpy as np

from common import ARTIFACTS_DIR
from repro.sensornet.multihop import MultihopPath, multihop_flush_transfer
from repro.sensornet.packets import fragment_measurement
from repro.viz.export import write_csv

HOP_COUNTS = (1, 2, 3, 5, 8)
PER_LINK_LOSS = 0.1
TRIALS = 10


def run_experiment() -> dict:
    gen = np.random.default_rng(0)
    results = {}
    for hops in HOP_COUNTS:
        successes = 0
        overheads = []
        link_loads = []
        for trial in range(TRIALS):
            counts = gen.integers(-2000, 2000, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            path = MultihopPath.uniform(hops, PER_LINK_LOSS, seed=hops * 100 + trial)
            stats, _ = multihop_flush_transfer(packets, path, max_rounds=100)
            successes += stats.success
            overheads.append(stats.data_transmissions / len(packets))
            link_loads.append(stats.link_transmissions / len(packets))
        results[hops] = {
            "recovery": successes / TRIALS,
            "e2e_delivery": (1 - PER_LINK_LOSS) ** hops,
            "tx_overhead": float(np.mean(overheads)),
            "link_load": float(np.mean(link_loads)),
        }
    return results


def test_ablation_multihop(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print(f"\nAblation: multihop Flush at {PER_LINK_LOSS:.0%} per-link loss")
    print(f"{'hops':>5}  {'recovery':>8}  {'p(deliver)':>10}  "
          f"{'e2e sends/pkt':>13}  {'link tx/pkt':>11}")
    rows = []
    for hops, r in results.items():
        print(
            f"{hops:>5}  {r['recovery']:>8.0%}  {r['e2e_delivery']:>10.3f}"
            f"  {r['tx_overhead']:>13.2f}  {r['link_load']:>11.2f}"
        )
        rows.append(
            [hops, f"{r['recovery']:.3f}", f"{r['e2e_delivery']:.4f}",
             f"{r['tx_overhead']:.3f}", f"{r['link_load']:.3f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "ablation_multihop.csv",
        ["hops", "recovery", "e2e_delivery_prob", "e2e_sends_per_packet",
         "link_tx_per_packet"],
        rows,
    )

    # Reliability holds at every depth.
    assert all(r["recovery"] == 1.0 for r in results.values())
    # End-to-end sends per packet track the compounding delivery
    # probability: roughly 1 / (1 - loss)^hops, within 60% slack for the
    # full-round retransmission granularity.
    for hops, r in results.items():
        floor = 1.0 / r["e2e_delivery"]
        assert floor <= r["tx_overhead"] < 1.6 * floor + 1.0
    # Per-link load grows with depth (every end-to-end send touches up
    # to `hops` links).
    loads = [results[h]["link_load"] for h in HOP_COUNTS]
    assert all(b > a for a, b in zip(loads, loads[1:]))
