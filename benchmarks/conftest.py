"""Pytest path setup so benchmark modules can import ``common``."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
