"""Fig. 9: harmonic peak features and peak harmonic distances per zone.

Regenerates the figure's structure: a healthy (Zone A) PSD sample with its
detected harmonic peaks serves as the baseline; PSD samples drawn from the
other zones are scored by their peak harmonic distance from it.  The paper
shows small distances for healthy-adjacent samples and a clearly larger
distance for the degraded sample (0.116 / 0.097 vs 0.232 in their plot).
"""

import numpy as np

from common import ARTIFACTS_DIR, SAMPLING_RATE_HZ, SAMPLES_PER_MEASUREMENT
from repro.core.distance import peak_harmonic_distance
from repro.core.features import psd_feature, psd_frequencies
from repro.core.peaks import extract_harmonic_peaks
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer
from repro.viz.export import write_csv

WEAR_BY_CASE = {
    "zone_A_baseline": 0.05,
    "zone_A_sample": 0.1,
    "zone_BC_sample": 0.55,
    "zone_D_sample": 1.0,
}


def run_experiment() -> dict:
    rng = np.random.default_rng(3)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(4))
    freqs = psd_frequencies(SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ)

    cases = {}
    for name, wear in WEAR_BY_CASE.items():
        block = synth.synthesize(wear, SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ, rng)
        psd = psd_feature(sensor.measure_g(block, 0.0, SAMPLING_RATE_HZ))
        cases[name] = {
            "psd": psd,
            "peaks": extract_harmonic_peaks(psd, freqs),
        }
    baseline = cases["zone_A_baseline"]["peaks"]
    for name, case in cases.items():
        case["distance"] = peak_harmonic_distance(case["peaks"], baseline)
    return {"cases": cases, "freqs": freqs}


def test_fig9_harmonic_peaks(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    cases = out["cases"]

    print("\nFig. 9: peak harmonic features and distances from the Zone A baseline")
    rows = []
    for name, case in cases.items():
        peaks = case["peaks"]
        print(
            f"{name:<18} peaks={len(peaks):>2}  "
            f"D_a={case['distance']:.3f}  "
            f"top peak at {peaks.frequencies[int(np.argmax(peaks.values))]:.0f} Hz"
        )
        for f, p in zip(peaks.frequencies, peaks.values):
            rows.append([name, f"{f:.1f}", f"{p:.6f}", f"{case['distance']:.4f}"])
    write_csv(
        ARTIFACTS_DIR / "fig9_harmonic_peaks.csv",
        ["case", "peak_hz", "peak_value", "distance_from_baseline"],
        rows,
    )

    # Structure checks mirroring the paper's panel ordering.
    assert cases["zone_A_baseline"]["distance"] == 0.0
    d_same = cases["zone_A_sample"]["distance"]
    d_mid = cases["zone_BC_sample"]["distance"]
    d_bad = cases["zone_D_sample"]["distance"]
    assert d_same < d_bad
    assert d_mid < d_bad
    # Every case detects a meaningful number of harmonic peaks.
    for case in cases.values():
        assert len(case["peaks"]) >= 3
    # The healthy baseline's strongest peak is the rotation fundamental
    # region (low frequency); the degraded sample has significant
    # high-frequency peaks, the paper's motivating observation.
    bad_peaks = cases["zone_D_sample"]["peaks"]
    assert bad_peaks.frequencies.max() > 500.0
