"""Fig. 8: acceleration-average traces and invalid-measurement detection.

Simulates one stable sensor (Fig. 8a) and one unstable sensor with
long-term offset drift plus abrupt mid-trace jumps (Fig. 8b) over roughly
three months, then runs the mean-shift outlier detector over the 3-D
acceleration averages.  The stable trace must stay fully valid; the
unstable trace's drifted/jumped segments must be flagged, matching the
white-box exclusions of Fig. 8b.
"""

import numpy as np

from common import ARTIFACTS_DIR, SAMPLING_RATE_HZ, SAMPLES_PER_MEASUREMENT
from repro.core.features import measurement_offsets
from repro.core.outliers import detect_invalid_measurements, stability_report
from repro.simulation.mems import MEMSSensor, MEMSSensorConfig
from repro.simulation.signal import VibrationSynthesizer
from repro.viz.ascii import ascii_line_plot
from repro.viz.export import write_csv

N_DAYS = 84
MEASUREMENTS_PER_DAY = 2


def sensor_trace(config: MEMSSensorConfig, seed: int) -> np.ndarray:
    """Per-measurement acceleration averages of one sensor over ~3 months."""
    rng = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(config, rng)
    offsets = []
    for step in range(N_DAYS * MEASUREMENTS_PER_DAY):
        day = step / MEASUREMENTS_PER_DAY
        block = synth.synthesize(0.2, SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ, rng)
        sensed = sensor.measure_g(block, day, SAMPLING_RATE_HZ)
        offsets.append(measurement_offsets(sensed))
    return np.stack(offsets)


def run_experiment() -> dict:
    stable = sensor_trace(MEMSSensorConfig(), seed=0)
    unstable = sensor_trace(
        MEMSSensorConfig(
            drift_g_per_day=0.006,
            jump_probability_per_day=0.03,
            jump_scale_g=0.8,
        ),
        seed=1,
    )
    return {
        "stable": stable,
        "unstable": unstable,
        "stable_invalid": detect_invalid_measurements(stable),
        "unstable_invalid": detect_invalid_measurements(unstable),
    }


def test_fig8_outlier_detection(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    days = np.arange(out["stable"].shape[0]) / MEASUREMENTS_PER_DAY
    for name in ("stable", "unstable"):
        trace = out[name]
        invalid = out[f"{name}_invalid"]
        print(f"\nFig. 8 ({name} sensor): average accelerations, "
              f"{invalid.sum()} of {invalid.size} flagged invalid")
        print(
            ascii_line_plot(
                days,
                {"avg_x": trace[:, 0], "avg_y": trace[:, 1], "avg_z": trace[:, 2]},
                title=f"{name} sensor acceleration averages (g)",
                x_label="day",
                y_label="g",
                height=10,
            )
        )
        report = stability_report(trace)
        print(f"stability report: {report}")
        write_csv(
            ARTIFACTS_DIR / f"fig8_{name}_sensor.csv",
            ["day", "avg_x", "avg_y", "avg_z", "invalid"],
            [
                [f"{d:.2f}", *(f"{v:.5f}" for v in row), int(flag)]
                for d, row, flag in zip(days, trace, invalid)
            ],
        )

    # Fig. 8a: stable sensor -> no exclusions.
    assert out["stable_invalid"].mean() < 0.02
    # Fig. 8b: the unstable sensor has detectable invalid segments, but a
    # usable majority regime survives.
    assert out["unstable_invalid"].mean() > 0.05
    assert out["unstable_invalid"].mean() < 0.95
