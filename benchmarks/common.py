"""Shared workload generators and helpers for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
datasets here are module-cached so a full ``pytest benchmarks/`` run pays
the simulation cost once per workload.

Scale note: the paper's fleet produced 155,520 measurements (12 pumps ×
3 months × 10-minute reports).  Synthesizing that volume in pure Python is
possible but slow, so the fleet experiments default to a 3-hour report
period (~8,640 measurements) — every algorithmic code path is identical,
only the point density changes.  Set ``REPRO_PAPER_SCALE=1`` in the
environment to run the exact paper volume.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.core.features import psd_feature, psd_frequencies
from repro.simulation.degradation import (
    ZONE_BOUNDARY_A_BC,
    ZONE_BOUNDARY_BC_D,
)
from repro.simulation.fics import TemperatureSource
from repro.simulation.fleet import FleetConfig, FleetDataset, FleetSimulator
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer

ARTIFACTS_DIR = Path(__file__).resolve().parent.parent / "artifacts"

SAMPLING_RATE_HZ = 4000.0
SAMPLES_PER_MEASUREMENT = 1024

# The paper's label mix (Sec. V-A): 700 Zone A, 1400 Zone BC, 700 Zone D.
PAPER_LABEL_COUNTS = {ZONE_A: 700, ZONE_BC: 1400, ZONE_D: 700}

# Wear ranges that ground-truth-map to each zone (degradation.py).
ZONE_WEAR_RANGES = {
    ZONE_A: (0.02, ZONE_BOUNDARY_A_BC - 0.02),
    ZONE_BC: (ZONE_BOUNDARY_A_BC + 0.02, ZONE_BOUNDARY_BC_D - 0.02),
    ZONE_D: (ZONE_BOUNDARY_BC_D + 0.02, 1.15),
}


def paper_scale_enabled() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


@lru_cache(maxsize=4)
def labelled_zone_dataset(
    n_a: int = 700, n_bc: int = 1400, n_d: int = 700, seed: int = 0
) -> dict:
    """The classification workload: labelled measurements per zone.

    Generates measurements at wear levels drawn uniformly from each
    zone's wear range, through the full sensing chain (synthesizer +
    MEMS imperfections), and the matching FICS temperature readings.

    Returns a dict with ``psds`` (n, K), ``labels`` (n,), ``temps`` (n,)
    and ``freqs`` (K,), shuffled so class blocks are interleaved.
    """
    rng = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(seed + 1))
    temp_source = TemperatureSource(rng=np.random.default_rng(seed + 2))
    freqs = psd_frequencies(SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ)

    psds, labels, temps = [], [], []
    day = 0.0
    for zone, count in ((ZONE_A, n_a), (ZONE_BC, n_bc), (ZONE_D, n_d)):
        lo, hi = ZONE_WEAR_RANGES[zone]
        for _ in range(count):
            wear = float(rng.uniform(lo, hi))
            block = synth.synthesize(
                wear, SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ, rng
            )
            sensed = sensor.measure_g(block, day, SAMPLING_RATE_HZ)
            psds.append(psd_feature(sensed))
            labels.append(zone)
            temps.append(temp_source.reading(day, wear))
            day += 0.01
    order = rng.permutation(len(labels))
    return {
        "psds": np.stack(psds)[order],
        "labels": np.asarray(labels, dtype=object)[order],
        "temps": np.asarray(temps)[order],
        "freqs": freqs,
    }


@lru_cache(maxsize=2)
def rul_fleet(seed: int = 7) -> FleetDataset:
    """The RUL workload: the paper's 12-pump, 3-month fleet.

    Defaults to a 3-hour report period (~8.6k measurements); the exact
    paper density (10-minute reports, 155,520 measurements) is enabled
    by ``REPRO_PAPER_SCALE=1``.
    """
    interval = 10.0 / (60 * 24) if paper_scale_enabled() else 0.125
    config = FleetConfig(
        num_pumps=12,
        duration_days=90.0,
        report_interval_days=interval,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        model_ii_fraction=1.0 / 3.0,
        seed=seed,
    )
    return FleetSimulator(config).run()


@lru_cache(maxsize=2)
def rul_fleet_analysis(seed: int = 7) -> dict:
    """Fleet + fitted pipeline artifacts shared by Figs. 15, 16, Table IV."""
    from repro.core.pipeline import AnalysisPipeline, PipelineConfig

    dataset = rul_fleet(seed)
    pumps, service, samples = dataset.measurement_arrays()
    _, labels = dataset.expert_labels({ZONE_A: 60, ZONE_BC: 60, ZONE_D: 40})
    pipeline = AnalysisPipeline(
        PipelineConfig(
            moving_average_window=8,
            ransac_min_inliers=max(150, len(dataset.measurements) // 20),
            ransac_residual_threshold=0.05,
        )
    )
    result = pipeline.run(pumps, service, samples, labels)
    return {
        "dataset": dataset,
        "pumps": pumps,
        "service": service,
        "result": result,
    }


def stratified_train_test(
    labels: np.ndarray,
    n_train_per_class: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Split indices: ``n_train_per_class`` per zone for training, rest test."""
    train = []
    for zone in np.unique(labels):
        pool = np.nonzero(labels == zone)[0]
        picked = rng.choice(pool, size=n_train_per_class, replace=False)
        train.extend(picked.tolist())
    train_idx = np.asarray(sorted(train), dtype=np.intp)
    test_idx = np.setdiff1d(np.arange(labels.size), train_idx)
    return train_idx, test_idx
