"""Fig. 11: conditional distributions of D_a per zone and the decision boundary.

Regenerates the figure over the paper's label mix (700 Zone A, 1400 Zone
BC, 700 Zone D): histograms of the peak harmonic distance from the Zone A
exemplar for each zone, Gaussian KDE density estimates, and the
minimum-error Zone BC / Zone D boundary (the paper learns 0.21).
"""

import numpy as np

from common import ARTIFACTS_DIR, PAPER_LABEL_COUNTS, labelled_zone_dataset
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D, ZONES, PeakHarmonicFeature
from repro.core.kde import GaussianKDE1D
from repro.core.rul import learn_zone_d_threshold
from repro.viz.ascii import ascii_histogram
from repro.viz.export import write_csv


def run_experiment() -> dict:
    data = labelled_zone_dataset(
        PAPER_LABEL_COUNTS[ZONE_A],
        PAPER_LABEL_COUNTS[ZONE_BC],
        PAPER_LABEL_COUNTS[ZONE_D],
        seed=0,
    )
    psds, labels, freqs = data["psds"], data["labels"], data["freqs"]

    # Zone A exemplar from a small healthy training subset.
    rng = np.random.default_rng(1)
    a_idx = np.nonzero(labels == ZONE_A)[0]
    train_a = rng.choice(a_idx, size=25, replace=False)
    feature = PeakHarmonicFeature().fit(psds[train_a], freqs)
    da = feature.score_many(psds, freqs)

    boundary = learn_zone_d_threshold(da, labels)
    kdes = {zone: GaussianKDE1D(da[labels == zone]) for zone in ZONES}
    return {"da": da, "labels": labels, "boundary": boundary, "kdes": kdes}


def test_fig11_da_distributions(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    da, labels, boundary = out["da"], out["labels"], out["boundary"]

    print(f"\nFig. 11: P(D_a | zone) over {labels.size} labelled measurements")
    for zone in ZONES:
        values = da[labels == zone]
        print(f"\nZone {zone}: n={values.size} mean={values.mean():.3f} "
              f"std={values.std():.3f}")
        print(ascii_histogram(values, bins=16, width=40))
    print(f"\nLearned Zone D decision boundary: {boundary:.3f} (paper: 0.21)")

    grid = np.linspace(0, float(da.max()) * 1.05, 200)
    write_csv(
        ARTIFACTS_DIR / "fig11_da_densities.csv",
        ["da"] + [f"pdf_{z}" for z in ZONES],
        [
            [f"{x:.4f}"] + [f"{out['kdes'][z].pdf(x)[0]:.5f}" for z in ZONES]
            for x in grid
        ],
    )
    write_csv(
        ARTIFACTS_DIR / "fig11_boundary.csv",
        ["boundary"],
        [[f"{boundary:.4f}"]],
    )

    # The three conditional distributions are ordered and separated.
    means = {z: da[labels == z].mean() for z in ZONES}
    assert means[ZONE_A] < means[ZONE_BC] < means[ZONE_D]
    # The boundary separates BC from D far better than chance: at most
    # 25% of BC above it and at most 35% of D below it.
    bc_above = (da[labels == ZONE_BC] >= boundary).mean()
    d_below = (da[labels == ZONE_D] < boundary).mean()
    assert bc_above < 0.25
    assert d_below < 0.35
    # Same order of magnitude as the paper's 0.21 boundary.
    assert 0.05 < boundary < 0.6
