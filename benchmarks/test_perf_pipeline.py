"""Performance benchmarks: throughput of the analysis hot path.

Unlike the experiment benchmarks (which regenerate the paper's tables and
figures once), these use pytest-benchmark's repeated timing to track the
per-measurement cost of each pipeline stage — the numbers that decide how
many sensors one analysis server sustains.  At the paper's deployment
(12 pumps × 10-minute reports ≈ 0.02 measurements/s) even the slowest
stage has four orders of magnitude of headroom; these benchmarks are the
evidence.
"""

import numpy as np
import pytest

from repro.core.classify import PeakHarmonicFeature
from repro.core.distance import peak_harmonic_distance
from repro.core.features import psd_feature, psd_frequencies
from repro.core.meanshift import MeanShift
from repro.core.peaks import extract_harmonic_peaks
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer

FS = 4000.0
K = 1024


@pytest.fixture(scope="module")
def sample_block():
    gen = np.random.default_rng(0)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(1))
    return sensor.measure_g(synth.synthesize(0.5, K, FS, gen), 0.0, FS)


@pytest.fixture(scope="module")
def sample_psd(sample_block):
    return psd_feature(sample_block)


@pytest.fixture(scope="module")
def freqs():
    return psd_frequencies(K, FS)


def test_perf_psd_extraction(benchmark, sample_block):
    """DCT-based PSD of one 1024x3 block."""
    result = benchmark(psd_feature, sample_block)
    assert result.shape == (K,)


def test_perf_peak_extraction(benchmark, sample_psd, freqs):
    """Harmonic peak extraction (smooth + maxima + top-20)."""
    peaks = benchmark(extract_harmonic_peaks, sample_psd, freqs)
    assert len(peaks) > 0


def test_perf_peak_distance(benchmark, sample_psd, freqs):
    """One Algorithm 1 distance evaluation."""
    gen = np.random.default_rng(2)
    synth = VibrationSynthesizer()
    other_psd = psd_feature(synth.synthesize(1.0, K, FS, gen))
    a = extract_harmonic_peaks(sample_psd, freqs)
    b = extract_harmonic_peaks(other_psd, freqs)
    d = benchmark(peak_harmonic_distance, a, b)
    assert d >= 0


def test_perf_full_measurement_scoring(benchmark, sample_block, freqs):
    """Raw block -> PSD -> peaks -> D_a, the per-measurement hot path."""
    gen = np.random.default_rng(3)
    synth = VibrationSynthesizer()
    ref = np.stack([psd_feature(synth.synthesize(0.05, K, FS, gen)) for _ in range(8)])
    feature = PeakHarmonicFeature().fit(ref, freqs)

    def score_one():
        return feature.score(psd_feature(sample_block), freqs)

    da = benchmark(score_one)
    assert np.isfinite(da)


def test_perf_mean_shift_outlier_pass(benchmark):
    """Mean-shift over 200 offset points (one sensor's 3-month history)."""
    gen = np.random.default_rng(4)
    offsets = gen.normal(0, 0.005, size=(200, 3)) + np.asarray([0.1, -0.2, 1.0])
    offsets[150:] += 0.5

    def cluster():
        return MeanShift(bandwidth=0.15).fit(offsets)

    result = benchmark(cluster)
    assert result.n_clusters >= 2
