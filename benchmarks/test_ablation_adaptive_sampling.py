"""Ablation: the paper's future-work dynamic-sampling extension.

Sec. VII proposes varying the sampling frequency over a pump's life to
save energy once the analytics already has the information it needs.
This ablation replays per-pump D_a trajectories from the fleet experiment
through :class:`AdaptiveSamplingPolicy` and compares the per-measurement
energy of the adaptive schedule against the fixed 4 kHz schedule, while
checking the policy samples *fast* exactly when degradation accelerates.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.sensornet.energy import EnergyModel
from repro.sensornet.scheduler import AdaptiveSamplingPolicy
from repro.viz.export import write_csv

FIXED_RATE_HZ = 4000.0
HISTORY = 20  # measurements of trailing history fed to the policy


def run_experiment() -> dict:
    out = rul_fleet_analysis()
    result, pumps, service = out["result"], out["pumps"], out["service"]
    dataset = out["dataset"]
    policy = AdaptiveSamplingPolicy(min_rate_hz=500.0, max_rate_hz=8000.0,
                                    slope_scale=0.002)
    energy = EnergyModel()

    per_pump = {}
    for info in dataset.pumps:
        pump = info.pump_id
        member = np.nonzero((pumps == pump) & result.valid_mask)[0]
        order = member[np.argsort(service[member])]
        days = service[order]
        da = result.da[order]
        if days.size < 2 * HISTORY:
            continue
        rates = []
        for i in range(HISTORY, days.size):
            rates.append(
                policy.suggest_rate(days[i - HISTORY : i], da[i - HISTORY : i])
            )
        rates = np.asarray(rates)
        adaptive_energy = np.mean([energy.measurement_energy_j(r) for r in rates])
        fixed_energy = energy.measurement_energy_j(FIXED_RATE_HZ)
        per_pump[pump] = {
            "population": info.model_name,
            "mean_rate": float(rates.mean()),
            "final_rate": float(rates[-1]),
            "early_rate": float(rates[: max(1, rates.size // 5)].mean()),
            "energy_ratio": adaptive_energy / fixed_energy,
        }
    return per_pump


def test_ablation_adaptive_sampling(benchmark):
    per_pump = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nAblation: adaptive sampling (future-work extension)")
    print(f"{'pump':>4}  {'population':>10}  {'mean rate':>9}  "
          f"{'early':>7}  {'final':>7}  {'energy vs fixed':>15}")
    rows = []
    for pump, r in sorted(per_pump.items()):
        print(
            f"{pump:>4}  {r['population']:>10}  {r['mean_rate']:>9.0f}"
            f"  {r['early_rate']:>7.0f}  {r['final_rate']:>7.0f}"
            f"  {r['energy_ratio']:>14.2%}"
        )
        rows.append(
            [pump, r["population"], f"{r['mean_rate']:.1f}",
             f"{r['early_rate']:.1f}", f"{r['final_rate']:.1f}",
             f"{r['energy_ratio']:.4f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "ablation_adaptive_sampling.csv",
        ["pump", "population", "mean_rate_hz", "early_rate_hz", "final_rate_hz",
         "energy_vs_fixed"],
        rows,
    )

    ratios = [r["energy_ratio"] for r in per_pump.values()]
    # Note: at a fixed measurement count, *lower* sampling rates cost
    # more sensing energy per block (longer active window), so the win
    # from sampling slow is in radio/bandwidth budget per unit of
    # information, not in the per-measurement joule count — what we
    # assert here is the policy's *behaviour*, the paper's actual
    # proposal: sample slow while healthy, fast when degrading.
    assert per_pump, "no pump had enough history"
    fast_agers = [r for r in per_pump.values() if r["population"] == "Model II"]
    slow_agers = [r for r in per_pump.values() if r["population"] == "Model I"]
    if fast_agers and slow_agers:
        assert np.mean([r["mean_rate"] for r in fast_agers]) > np.mean(
            [r["mean_rate"] for r in slow_agers]
        )
    # Every pump's rate stays within the configured band.
    for r in per_pump.values():
        assert 500.0 <= r["mean_rate"] <= 8000.0
