"""Ablation: population-line RUL projection vs per-pump sequence models.

Sec. VII's future work proposes sequential models so the engine can track
each pump's own dynamics.  This ablation pits three RUL estimators
against ground truth on the fleet of Fig. 16:

* the paper's method — recursive-RANSAC population slope anchored to the
  pump (what the engine ships);
* Holt linear smoothing of the pump's own D_a series; and
* an AR(3) forecaster on the pump's D_a increments.

Expectation: the population-model projection is the most accurate with
only three months of history (it borrows strength across pumps), while
the sequence models are competitive on fast-ageing pumps whose trend is
well-excited within the window — which is exactly why the paper lists
them as *future* work rather than a replacement.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.core.forecast import ARForecaster, HoltLinearForecaster, crossing_forecast
from repro.viz.export import write_csv


def sequence_rul(days, da, threshold, forecaster) -> float:
    """RUL in days from a per-pump sequence forecast."""
    forecaster.fit(da)
    step_days = float(np.median(np.diff(days))) if days.size > 1 else 1.0
    result = crossing_forecast(forecaster, float(da[-1]), threshold, horizon=20000)
    if result.crossed_already:
        return 0.0
    if not np.isfinite(result.crossing_step):
        return np.inf
    return result.crossing_step * step_days


def run_experiment() -> dict:
    out = rul_fleet_analysis()
    dataset, result = out["dataset"], out["result"]
    pumps, service = out["pumps"], out["service"]
    threshold = result.zone_d_threshold

    rows = []
    for info in dataset.pumps:
        pump = info.pump_id
        member = np.nonzero((pumps == pump) & result.valid_mask)[0]
        order = member[np.argsort(service[member])]
        days = service[order]
        da = result.da[order]
        if days.size < 10:
            continue
        latest = float(days.max())
        true_rul = info.life_days - latest

        ransac_pred = result.rul[pump].rul_days if pump in result.rul else np.nan
        holt_pred = sequence_rul(days, da, threshold, HoltLinearForecaster(damping=1.0))
        ar_pred = sequence_rul(days, da, threshold, ARForecaster(order=3))
        rows.append(
            {
                "pump": pump,
                "population": info.model_name,
                "true": true_rul,
                "ransac": ransac_pred,
                "holt": holt_pred,
                "ar": ar_pred,
            }
        )
    return {"rows": rows}


def _error_stats(rows, key, cap_days=1500.0):
    errs = []
    for r in rows:
        pred = min(r[key], cap_days) if np.isfinite(r[key]) else cap_days
        errs.append(abs(pred - r["true"]))
    return float(np.median(errs)), float(np.mean(errs))


def test_ablation_forecasting(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = out["rows"]

    print("\nAblation: RUL estimator comparison (days)")
    print(f"{'pump':>4}  {'pop':>8}  {'true':>6}  {'ransac':>7}  {'holt':>7}  {'ar':>7}")
    for r in rows:
        def fmt(v):
            return f"{v:>7.0f}" if np.isfinite(v) else "    inf"
        print(f"{r['pump']:>4}  {r['population'][-8:]:>8}  {r['true']:>6.0f}"
              f"  {fmt(r['ransac'])}  {fmt(r['holt'])}  {fmt(r['ar'])}")
    write_csv(
        ARTIFACTS_DIR / "ablation_forecasting.csv",
        ["pump", "population", "true_rul", "ransac_rul", "holt_rul", "ar_rul"],
        [
            [r["pump"], r["population"], f"{r['true']:.1f}", f"{r['ransac']:.1f}",
             f"{r['holt']:.1f}" if np.isfinite(r["holt"]) else "inf",
             f"{r['ar']:.1f}" if np.isfinite(r["ar"]) else "inf"]
            for r in rows
        ],
    )

    stats = {key: _error_stats(rows, key) for key in ("ransac", "holt", "ar")}
    print("\nabsolute error (median / mean, predictions capped at 1500 d):")
    for key, (median, mean) in stats.items():
        print(f"  {key:<7} {median:>7.0f} / {mean:>7.0f}")

    # The shipped estimator is the best of the three on median error —
    # population models beat per-pump extrapolation at this history depth.
    assert stats["ransac"][0] <= stats["holt"][0]
    assert stats["ransac"][0] <= stats["ar"][0]
    # The sequence models are still meaningful (not orders of magnitude
    # off) on the fast population, where the trend is well excited.
    fast = [r for r in rows if r["population"] == "Model II"]
    if fast:
        fast_holt = np.median(
            [abs(min(r["holt"], 1500.0) - r["true"]) for r in fast]
        )
        assert fast_holt < 400.0
