"""Extension: walk-forward RUL error as a function of lead time.

Fig. 16 scores the final predictions; operations cares how early they
can be trusted.  This benchmark backtests the RUL layer over the fleet's
history — at each refresh it refits the lifetime models on only the data
available then — and reports mean absolute error bucketed by true lead
time.  The expected shape: error shrinks as failure approaches (the
pump's own history pins its line down), and predictions made with months
of lead remain sign-correct even when their magnitude is loose.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.analysis.backtest import backtest_rul
from repro.viz.export import write_csv

LEAD_EDGES = (0.0, 60.0, 150.0, 300.0, 600.0)


def run_experiment() -> dict:
    out = rul_fleet_analysis()
    dataset, result = out["dataset"], out["result"]
    pumps, service = out["pumps"], out["service"]
    timestamps = np.asarray([m.timestamp_day for m in dataset.measurements])

    lives = {p.pump_id: p.life_days for p in dataset.pumps}
    backtest = backtest_rul(
        pumps,
        timestamps,
        service,
        result.da,
        lives,
        zone_d_threshold=result.zone_d_threshold,
        refresh_every_days=15.0,
    )
    return {"backtest": backtest}


def test_ext_backtest_leadtime(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    backtest = out["backtest"]

    buckets = backtest.mae_by_lead_time(LEAD_EDGES)
    print(f"\nWalk-forward RUL backtest: {len(backtest.points)} predictions, "
          f"overall MAE {backtest.mae():.0f} days")
    print(f"{'lead time':>12}  {'MAE (days)':>10}  {'n':>5}")
    rows = []
    leads = np.asarray([p.lead_time_days for p in backtest.points])
    for (lo, hi), (key, mae) in zip(
        zip(LEAD_EDGES[:-1], LEAD_EDGES[1:]), buckets.items()
    ):
        n = int(((leads >= lo) & (leads < hi)).sum())
        mae_text = f"{mae:.0f}" if np.isfinite(mae) else "-"
        print(f"{key:>12}  {mae_text:>10}  {n:>5}")
        rows.append([key, f"{mae:.2f}" if np.isfinite(mae) else "", n])
    write_csv(
        ARTIFACTS_DIR / "ext_backtest_leadtime.csv",
        ["lead_time_bucket", "mae_days", "n_predictions"],
        rows,
    )

    assert len(backtest.points) > 30
    # Near-failure predictions are tight relative to far-out ones.
    near = buckets["0-60d"]
    far = buckets["300-600d"]
    if np.isfinite(near) and np.isfinite(far):
        assert near < far
    # Sign correctness on decided predictions (|true RUL| > 45 d).
    decided = [p for p in backtest.points if abs(p.true_rul_days) > 45]
    if decided:
        sign_ok = np.mean(
            [np.sign(p.predicted_rul_days) == np.sign(p.true_rul_days)
             for p in decided]
        )
        print(f"sign agreement on decided predictions: {sign_ok:.0%}")
        assert sign_ok > 0.75
