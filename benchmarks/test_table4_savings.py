"""Table IV: savings of RUL prediction over fixed-schedule maintenance.

Two layers, mirroring the paper:

1. **Event accounting** — pumps replaced by plan waste their remaining
   useful days at $100/day (the paper's pumps 4, 5, 8 wasted 390+310+280
   days = $98,000); breakdown pumps ran overdue in hazard condition.
2. **Policy comparison** — the fixed six-month policy vs RUL-driven
   replacement over the same pump population, using the *measured* RUL
   prediction error from the Fig. 16 experiment.  The paper reports 22%
   operation-cost savings on Model I, 7.4% on Model II, and a 1.2x fleet
   lifetime prolongation; we verify the same ordering and sign at our
   (idealized-policy) magnitudes.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.analysis.cost import CostModel
from repro.simulation.degradation import MODEL_I, MODEL_II, ZONE_BOUNDARY_BC_D
from repro.viz.export import write_csv

PM_INTERVAL_DAYS = 180.0


def measured_prediction_error_days() -> float:
    """RMS error of the engine's RUL predictions on the Fig. 16 fleet."""
    out = rul_fleet_analysis()
    dataset, result = out["dataset"], out["result"]
    pumps, service = out["pumps"], out["service"]
    errors = []
    for pump_info in dataset.pumps:
        prediction = result.rul.get(pump_info.pump_id)
        if prediction is None:
            continue
        latest = float(service[pumps == pump_info.pump_id].max())
        true_rul = pump_info.life_days - latest
        errors.append(prediction.rul_days - true_rul)
    if not errors:
        return 60.0
    return float(np.sqrt(np.mean(np.square(errors))))


def run_experiment() -> dict:
    error_days = measured_prediction_error_days()
    rng = np.random.default_rng(0)
    model = CostModel()

    populations = {}
    for spec in (MODEL_I, MODEL_II):
        lives = np.asarray([spec.sample_life_days(rng) for _ in range(1500)])
        predictions = lives + rng.normal(0, error_days, size=lives.size)
        summary = model.compare_policies(
            lives, predictions, pm_interval_days=PM_INTERVAL_DAYS,
            safety_margin_days=max(21.0, 0.5 * error_days),
            hazard_alert_fraction=ZONE_BOUNDARY_BC_D,
        )
        populations[spec.name] = summary

    # Fleet-wide mix (1/3 Model II like the Table IV fleet).
    lives_fleet = np.concatenate(
        [
            [MODEL_I.sample_life_days(rng) for _ in range(1000)],
            [MODEL_II.sample_life_days(rng) for _ in range(500)],
        ]
    )
    predictions_fleet = lives_fleet + rng.normal(0, error_days, size=lives_fleet.size)
    fleet = model.compare_policies(
        lives_fleet, predictions_fleet, pm_interval_days=PM_INTERVAL_DAYS,
        safety_margin_days=max(21.0, 0.5 * error_days),
        hazard_alert_fraction=ZONE_BOUNDARY_BC_D,
    )
    return {"error_days": error_days, "populations": populations, "fleet": fleet}


def test_table4_savings(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print(f"\nTable IV: measured RUL prediction error (RMS): "
          f"{out['error_days']:.0f} days")
    print(f"{'population':>10}  {'savings':>8}  {'lifetime x':>10}  "
          f"{'base BM%':>8}  {'pred BM%':>8}")
    rows = []
    for name, summary in list(out["populations"].items()) + [("fleet", out["fleet"])]:
        print(
            f"{name:>10}  {summary.savings_fraction:>8.1%}"
            f"  {summary.lifetime_factor:>10.2f}"
            f"  {summary.baseline_breakdown_rate:>8.1%}"
            f"  {summary.predictive_breakdown_rate:>8.1%}"
        )
        rows.append(
            [name, f"{summary.savings_fraction:.4f}", f"{summary.lifetime_factor:.4f}",
             f"{summary.baseline_breakdown_rate:.4f}",
             f"{summary.predictive_breakdown_rate:.4f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "table4_savings.csv",
        ["population", "savings_fraction", "lifetime_factor",
         "baseline_breakdown_rate", "predictive_breakdown_rate"],
        rows,
    )

    # Table IV event accounting (the paper's worked dollar figures).
    model = CostModel()
    from repro.storage.records import PM, MaintenanceEvent

    paper_events = [
        MaintenanceEvent(4, 0.0, PM, 180.0, 390.0),
        MaintenanceEvent(5, 0.0, PM, 180.0, 310.0),
        MaintenanceEvent(8, 0.0, PM, 180.0, 280.0),
    ]
    wasted = model.wasted_rul_value(paper_events)
    print(f"\npaper's PM waste check: {wasted['pm_wasted_days']:.0f} days = "
          f"${wasted['pm_wasted_usd']:,.0f} (paper: $98,000)")
    assert wasted["pm_wasted_usd"] == 98_000.0

    model_i = out["populations"][MODEL_I.name]
    model_ii = out["populations"][MODEL_II.name]
    # Shape checks against the paper's claims:
    # 1. predictive maintenance saves on both populations' ordering —
    #    Model I (long life) saves much more than Model II (short life).
    assert model_i.savings_fraction > model_ii.savings_fraction
    assert model_i.savings_fraction > 0.15
    # 2. the fleet's average achieved lifetime is prolonged (paper: 1.2x).
    assert out["fleet"].lifetime_factor > 1.2
    # 3. predictive replacement does not increase breakdown exposure
    #    relative to the fixed schedule.
    assert (
        out["fleet"].predictive_breakdown_rate
        <= out["fleet"].baseline_breakdown_rate + 0.05
    )
