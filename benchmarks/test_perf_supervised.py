"""Performance benchmark: supervised vs plain fleet execution.

Arming :class:`SupervisionPolicy` buys crash-safety — per-chunk
deadlines, restart-with-backoff, salvage (docs/RELIABILITY.md) — and
must stay essentially free when nothing goes wrong: the supervisor only
adds per-chunk bookkeeping and a completion-driven wait loop, never
per-item work.  This module times ``FleetExecutor.map_ordered`` over a
BLAS-heavy per-item workload with and without supervision (minimum over
rounds, identical results asserted) and gates the overhead at **≤ 10%**.

Set ``REPRO_PERF_RELAXED=1`` (the PR-smoke CI job does) to widen the
gate for noisy shared runners; main branch CI runs the full gate.

Every run writes ``BENCH_4.json`` to the repo root — workload shape,
rounds, raw timings, overhead ratio and gate status — so CI can archive
the numbers as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import FleetExecutor, SupervisionPolicy

pytestmark = pytest.mark.perf

WORKERS = 4
CHUNK_SIZE = 4
N_ITEMS = 64
ROUNDS = 5

RELAXED = os.environ.get("REPRO_PERF_RELAXED", "") not in ("", "0")

#: Supervised wall-clock divided by plain wall-clock, min over rounds.
GATES = {"supervised_overhead": 1.25 if RELAXED else 1.10}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_4.json"

_REPORT: dict = {
    "benchmark": "supervised_fleet",
    "relaxed_gates": RELAXED,
    "gates": dict(GATES),
    "workload": {
        "items": N_ITEMS,
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "rounds": ROUNDS,
    },
}

_TIMINGS: dict[str, float] = {}

ITEMS = list(range(N_ITEMS))


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Persist the machine-readable benchmark record at module teardown."""
    yield
    BENCH_PATH.write_text(json.dumps(_REPORT, indent=2, sort_keys=True) + "\n")


def work(x):
    """A few milliseconds of GIL-releasing numpy per item — the shape of
    the engine's per-pump RUL fan-out."""
    a = np.full((160, 160), float(x % 7 + 1))
    for _ in range(4):
        a = np.tanh(a @ a.T / 160.0)
    return float(a.sum())


@pytest.fixture(scope="module")
def expected():
    return [work(x) for x in ITEMS]


def test_perf_plain_fleet(benchmark, expected):
    ex = FleetExecutor(max_workers=WORKERS, chunk_size=CHUNK_SIZE)
    result = benchmark.pedantic(
        lambda: ex.map_ordered(work, ITEMS), rounds=ROUNDS, iterations=1
    )
    _TIMINGS["plain"] = benchmark.stats.stats.min
    assert result == expected


def test_perf_supervised_fleet(benchmark, expected):
    ex = FleetExecutor(
        max_workers=WORKERS, chunk_size=CHUNK_SIZE, supervision=SupervisionPolicy()
    )
    result = benchmark.pedantic(
        lambda: ex.map_ordered(work, ITEMS), rounds=ROUNDS, iterations=1
    )
    _TIMINGS["supervised"] = benchmark.stats.stats.min
    # Parity first: same floats, and a clean run tallies zero activity.
    assert result == expected
    assert not ex.supervision_report.has_activity


def test_perf_supervised_overhead_gate():
    """Recorded overhead; runs after the two timing benchmarks above."""
    if len(_TIMINGS) < 2:  # pragma: no cover - benchmark-only collection
        pytest.skip("timing benchmarks did not run")
    overhead = _TIMINGS["supervised"] / _TIMINGS["plain"]
    _REPORT["seconds"] = dict(_TIMINGS)
    _REPORT["overhead"] = overhead
    _REPORT["gate_pass"] = {
        "supervised_overhead": overhead <= GATES["supervised_overhead"]
    }
    print(
        f"\nsupervised fleet overhead over plain ({N_ITEMS} items, "
        f"{WORKERS} workers): {overhead:.3f}x "
        f"(plain {_TIMINGS['plain'] * 1e3:.1f} ms, "
        f"supervised {_TIMINGS['supervised'] * 1e3:.1f} ms)"
    )
    assert overhead <= GATES["supervised_overhead"]
