"""Table I: piezoelectric vs MEMS vibration sensor specifications.

Regenerates the paper's hardware comparison table from the sensor spec
constants the simulator is built on, and verifies the qualitative claims
(MEMS is cheaper, smaller, lower power; piezo is less noisy).
"""

import numpy as np

from common import ARTIFACTS_DIR
from repro.simulation.mems import SENSOR_SPECS
from repro.viz.export import write_csv

HEADER = ["feature", "Piezo Sensor", "MEMS Sensor"]


def build_table() -> list[list[object]]:
    piezo = SENSOR_SPECS["piezo"]
    mems = SENSOR_SPECS["mems"]
    return [
        ["Price (US$)", piezo.price_usd, mems.price_usd],
        ["Power (mW)", piezo.power_mw, mems.power_mw],
        [
            "Size (inch)",
            "x".join(str(v) for v in piezo.size_inches),
            "x".join(str(v) for v in mems.size_inches),
        ],
        ["Noise density (ug/rtHz)", piezo.noise_density_ug_per_rthz, mems.noise_density_ug_per_rthz],
        ["Resonance freq (kHz)", piezo.resonance_khz, mems.resonance_khz],
        ["Accel range (g)", piezo.accel_range_g, mems.accel_range_g],
    ]


def test_table1_sensor_specs(benchmark):
    rows = benchmark(build_table)

    print("\nTable I: two generations of vibration sensors")
    print(f"{HEADER[0]:<26} {HEADER[1]:>14} {HEADER[2]:>14}")
    for row in rows:
        print(f"{row[0]:<26} {str(row[1]):>14} {str(row[2]):>14}")
    write_csv(ARTIFACTS_DIR / "table1_sensor_specs.csv", HEADER, rows)

    piezo = SENSOR_SPECS["piezo"]
    mems = SENSOR_SPECS["mems"]
    # Paper's qualitative claims.
    assert mems.price_usd < piezo.price_usd / 10
    assert mems.power_mw < piezo.power_mw
    assert np.prod(mems.size_inches) < np.prod(piezo.size_inches)
    assert mems.noise_density_ug_per_rthz > piezo.noise_density_ug_per_rthz
    assert mems.accel_range_g > piezo.accel_range_g
