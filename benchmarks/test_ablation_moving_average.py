"""Ablation: moving-average window vs D_a stability and boundary quality.

The preprocessing layer applies a user-defined moving average (one day by
default in the paper) to reduce measurement noise.  This ablation sweeps
the trailing window over one pump's dense D_a series and measures (a) the
series roughness (std of first differences) and (b) the residual around
the pump's true linear trend — both should fall monotonically — plus the
zone-classification accuracy on the fleet, which should improve and then
plateau.
"""

import numpy as np

from common import ARTIFACTS_DIR, rul_fleet_analysis
from repro.core.window import moving_average
from repro.viz.export import write_csv

WINDOWS = (1, 2, 4, 8, 16, 32)


def run_experiment() -> dict:
    out = rul_fleet_analysis()
    result, pumps, service = out["result"], out["pumps"], out["service"]
    dataset = out["dataset"]

    # Pick the pump with the most valid measurements.
    valid = result.valid_mask
    counts = {p: int(((pumps == p) & valid).sum()) for p in np.unique(pumps)}
    pump = max(counts, key=counts.get)
    member = np.nonzero((pumps == pump) & valid)[0]
    order = member[np.argsort(service[member])]
    days = service[order]
    da_raw = result.da[order]

    # The pump's true linear trend (from ground-truth wear rate).
    info = dataset.pumps[int(pump)]

    rows = {}
    for window in WINDOWS:
        smoothed = moving_average(da_raw, window)
        roughness = float(np.diff(smoothed).std())
        # Residual around the best line through the smoothed series.
        coeffs = np.polyfit(days, smoothed, 1)
        residual = float(np.std(smoothed - np.polyval(coeffs, days)))
        rows[window] = {"roughness": roughness, "residual": residual}
    return {"pump": int(pump), "life_days": info.life_days, "rows": rows}


def test_ablation_moving_average(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = out["rows"]

    print(f"\nAblation: moving-average window on pump {out['pump']} "
          f"(true life {out['life_days']:.0f} days)")
    print(f"{'window':>6}  {'roughness':>10}  {'trend residual':>14}")
    for window, r in rows.items():
        print(f"{window:>6}  {r['roughness']:>10.5f}  {r['residual']:>14.5f}")
    write_csv(
        ARTIFACTS_DIR / "ablation_moving_average.csv",
        ["window", "roughness", "trend_residual"],
        [[w, f"{r['roughness']:.6f}", f"{r['residual']:.6f}"] for w, r in rows.items()],
    )

    roughness = [rows[w]["roughness"] for w in WINDOWS]
    residual = [rows[w]["residual"] for w in WINDOWS]
    # Smoothing monotonically reduces point-to-point roughness...
    assert all(b <= a + 1e-12 for a, b in zip(roughness, roughness[1:]))
    # ...and tightens the series around its linear trend monotonically.
    assert all(b <= a + 1e-12 for a, b in zip(residual, residual[1:]))
    # The paper's one-day window (8 measurements at the default density)
    # already buys a double-digit improvement over raw D_a.
    assert residual[3] < 0.9 * residual[0]
    # Longer windows keep helping statistically — the practical limit is
    # reaction latency (a 32-measurement window is 4 days of lag), which
    # is an operational choice, not a statistical one.
    assert residual[5] < residual[3]
