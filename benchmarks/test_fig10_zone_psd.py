"""Fig. 10: 100 PSD sample traces per zone.

The paper plots 100 PSD measurements for Zone A, Zone BC and Zone D side
by side and reads off three trends: overall amplitude grows from A to D,
spectral shape changes (new peaks appear), and the per-frequency variance
of the PSD grows toward Zone D.  This benchmark regenerates 100 samples
per zone through the full sensing chain and verifies all three trends.
"""

import numpy as np

from common import ARTIFACTS_DIR, labelled_zone_dataset
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D, ZONES
from repro.viz.export import write_csv


def run_experiment() -> dict:
    data = labelled_zone_dataset(n_a=100, n_bc=100, n_d=100, seed=10)
    psds, labels, freqs = data["psds"], data["labels"], data["freqs"]
    stats = {}
    for zone in ZONES:
        member = psds[labels == zone]
        stats[zone] = {
            "mean_psd": member.mean(axis=0),
            "std_psd": member.std(axis=0),
            "total_power_mean": member.sum(axis=1).mean(),
            "total_power_std": member.sum(axis=1).std(),
            "n": member.shape[0],
        }
    return {"stats": stats, "freqs": freqs}


def test_fig10_zone_psd(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    stats, freqs = out["stats"], out["freqs"]

    print("\nFig. 10: per-zone PSD summary over 100 samples each")
    print(f"{'zone':>5}  {'mean total power':>16}  {'power std':>10}  {'HF power':>9}")
    hf = freqs > 1000.0
    rows = []
    for zone in ZONES:
        s = stats[zone]
        hf_power = s["mean_psd"][hf].sum()
        print(
            f"{zone:>5}  {s['total_power_mean']:>16.4f}  {s['total_power_std']:>10.4f}"
            f"  {hf_power:>9.4f}"
        )
        rows.append(
            [zone, f"{s['total_power_mean']:.5f}", f"{s['total_power_std']:.5f}",
             f"{hf_power:.5f}"]
        )
    write_csv(
        ARTIFACTS_DIR / "fig10_zone_psd_summary.csv",
        ["zone", "total_power_mean", "total_power_std", "hf_power"],
        rows,
    )
    # Per-bin mean PSD curves for external plotting.
    write_csv(
        ARTIFACTS_DIR / "fig10_zone_psd_curves.csv",
        ["freq_hz"] + [f"mean_psd_{z}" for z in ZONES] + [f"std_psd_{z}" for z in ZONES],
        [
            [f"{freqs[i]:.1f}"]
            + [f"{stats[z]['mean_psd'][i]:.6e}" for z in ZONES]
            + [f"{stats[z]['std_psd'][i]:.6e}" for z in ZONES]
            for i in range(0, freqs.size, 4)
        ],
    )

    # Trend 1: overall amplitude grows from zone to zone.
    assert (
        stats[ZONE_A]["total_power_mean"]
        < stats[ZONE_BC]["total_power_mean"]
        < stats[ZONE_D]["total_power_mean"]
    )
    # Trend 2: absolute high-frequency energy grows toward Zone D (the
    # *share* is not monotone because the sensor's white noise floor
    # dominates a healthy pump's small total power).
    hf_power = {z: stats[z]["mean_psd"][hf].sum() for z in ZONES}
    assert hf_power[ZONE_A] < hf_power[ZONE_BC] < hf_power[ZONE_D]
    # Trend 3: absolute PSD fluctuation grows toward Zone D.
    assert (
        stats[ZONE_A]["total_power_std"]
        < stats[ZONE_BC]["total_power_std"]
        < stats[ZONE_D]["total_power_std"]
    )
