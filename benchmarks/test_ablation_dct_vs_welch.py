"""Ablation: the paper's single-block DCT PSD vs Welch averaging.

The paper estimates its PSD with one DCT over the full 1024-sample block
— the maximum-resolution, maximum-variance estimator — and then fights
the variance downstream with Hann smoothing and peak matching.  The
standard alternative is Welch averaging (lower variance, lower
resolution).  This ablation runs the same zone-classification experiment
on both spectral estimators to check whether the paper's unconventional
choice costs anything once the harmonic-peak machinery sits on top.
"""

import numpy as np

from common import (
    ARTIFACTS_DIR,
    SAMPLES_PER_MEASUREMENT,
    SAMPLING_RATE_HZ,
    ZONE_WEAR_RANGES,
    stratified_train_test,
)
from repro.analysis.metrics import evaluate_labels
from repro.core.classify import ZONE_A, OrderedThresholdClassifier
from repro.core.distance import peak_harmonic_distance
from repro.core.features import psd_feature, psd_frequencies, welch_psd
from repro.core.peaks import extract_harmonic_peaks
from repro.simulation.mems import MEMSSensor
from repro.simulation.signal import VibrationSynthesizer
from repro.viz.export import write_csv

SAMPLES_PER_ZONE = 120
WELCH_NPERSEG = 512


def build_blocks(seed: int):
    rng = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    sensor = MEMSSensor(rng=np.random.default_rng(seed + 1))
    blocks, labels = [], []
    for zone, (lo, hi) in ZONE_WEAR_RANGES.items():
        for _ in range(SAMPLES_PER_ZONE):
            wear = float(rng.uniform(lo, hi))
            block = synth.synthesize(
                wear, SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ, rng
            )
            blocks.append(sensor.measure_g(block, 0.0, SAMPLING_RATE_HZ))
            labels.append(zone)
    return blocks, np.asarray(labels, dtype=object)


def classify_with(psds: np.ndarray, freqs: np.ndarray, labels: np.ndarray,
                  window_size: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    train_idx, test_idx = stratified_train_test(labels, 10, rng)
    a_train = train_idx[labels[train_idx] == ZONE_A]
    baseline = extract_harmonic_peaks(
        psds[a_train].mean(axis=0), freqs, window_size=window_size
    )
    peaks = [extract_harmonic_peaks(p, freqs, window_size=window_size) for p in psds]
    da = np.asarray([peak_harmonic_distance(p, baseline) for p in peaks])
    clf = OrderedThresholdClassifier().fit(da[train_idx], labels[train_idx])
    return evaluate_labels(labels[test_idx], clf.predict(da[test_idx])).accuracy


def run_experiment() -> dict:
    blocks, labels = build_blocks(seed=31)

    dct_psds = np.stack([psd_feature(b) for b in blocks])
    dct_freqs = psd_frequencies(SAMPLES_PER_MEASUREMENT, SAMPLING_RATE_HZ)

    welch_freqs, first = welch_psd(blocks[0], SAMPLING_RATE_HZ, nperseg=WELCH_NPERSEG)
    welch_psds = np.stack(
        [welch_psd(b, SAMPLING_RATE_HZ, nperseg=WELCH_NPERSEG)[1] for b in blocks]
    )

    # The DCT runs the paper's n_h=24 smoothing; Welch segments already
    # average variance away and have 4x coarser bins, so the comparable
    # smoothing window shrinks proportionally.
    results = {
        "dct": np.mean([
            classify_with(dct_psds, dct_freqs, labels, window_size=24, seed=s)
            for s in range(3)
        ]),
        "welch": np.mean([
            classify_with(welch_psds, welch_freqs, labels, window_size=6, seed=s)
            for s in range(3)
        ]),
    }
    return {"results": results, "dct_bins": dct_freqs.size, "welch_bins": welch_freqs.size}


def test_ablation_dct_vs_welch(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    results = out["results"]

    print("\nAblation: spectral estimator under identical downstream machinery")
    print(f"  DCT   ({out['dct_bins']} bins, n_h=24): accuracy={results['dct']:.3f}")
    print(f"  Welch ({out['welch_bins']} bins, n_h=6):  accuracy={results['welch']:.3f}")
    write_csv(
        ARTIFACTS_DIR / "ablation_dct_vs_welch.csv",
        ["estimator", "bins", "accuracy"],
        [
            ["dct", out["dct_bins"], f"{results['dct']:.4f}"],
            ["welch", out["welch_bins"], f"{results['welch']:.4f}"],
        ],
    )

    # Both estimators support the method: the paper's DCT choice is
    # defensible — peak matching + smoothing absorbs its variance — and
    # neither estimator collapses.
    assert results["dct"] > 0.7
    assert results["welch"] > 0.7
    assert abs(results["dct"] - results["welch"]) < 0.15
